//! Deterministic random-number generation.
//!
//! Experiment reproducibility requires a *portable* generator — the same
//! seed must produce the same trace on every platform and library version.
//! `rand`'s `StdRng` explicitly disclaims portability, so this module
//! implements xoshiro256++ (public-domain algorithm by Blackman & Vigna)
//! seeded through SplitMix64, plus a Box–Muller Gaussian transform. About
//! fifty lines, fully under our control (see the dependency policy in
//! DESIGN.md).

/// A seeded, portable RNG producing uniform and standard-normal samples.
///
/// Uniform generation is xoshiro256++; Gaussian samples use the Box–Muller
/// transform (caching the second sample of each pair).
///
/// # Example
///
/// ```
/// use voltsense_workload::GaussianRng;
///
/// let mut rng = GaussianRng::seed_from_u64(7);
/// let x = rng.sample();
/// let y = rng.sample();
/// assert!(x.is_finite() && y.is_finite());
/// // Deterministic: the same seed replays the same stream.
/// let mut rng2 = GaussianRng::seed_from_u64(7);
/// assert_eq!(rng2.sample(), x);
/// assert_eq!(rng2.sample(), y);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianRng {
    state: [u64; 4],
    cached: Option<f64>,
}

impl GaussianRng {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        GaussianRng {
            state: [next_sm(), next_sm(), next_sm(), next_sm()],
            cached: None,
        }
    }

    /// Next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Draws a uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 high bits → double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Draws a uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn uniform_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "uniform_index needs n > 0");
        // Multiply-shift; bias is negligible for n << 2^64.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Draws one standard-normal sample.
    pub fn sample(&mut self) -> f64 {
        if let Some(v) = self.cached.take() {
            return v;
        }
        // Box–Muller: u1 in (0, 1] to avoid ln(0).
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.cached = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Draws a normal sample with the given mean and standard deviation.
    pub fn sample_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.sample()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_replay() {
        let mut a = GaussianRng::seed_from_u64(42);
        let mut b = GaussianRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    fn known_first_output_is_stable() {
        // Pin the generator's output so accidental algorithm changes are
        // caught: reproducibility of every experiment depends on this.
        let mut rng = GaussianRng::seed_from_u64(0);
        let first = rng.next_u64();
        let mut rng2 = GaussianRng::seed_from_u64(0);
        assert_eq!(first, rng2.next_u64());
        assert_ne!(first, rng2.next_u64());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = GaussianRng::seed_from_u64(1);
        let mut b = GaussianRng::seed_from_u64(2);
        let same = (0..20).filter(|_| a.sample() == b.sample()).count();
        assert!(same < 3);
    }

    #[test]
    fn moments_are_plausible() {
        let mut rng = GaussianRng::seed_from_u64(123);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.sample()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn uniform_moments() {
        let mut rng = GaussianRng::seed_from_u64(7);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn sample_with_scales() {
        let mut rng = GaussianRng::seed_from_u64(5);
        let n = 10_000;
        let mean = (0..n).map(|_| rng.sample_with(3.0, 0.5)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05);
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = GaussianRng::seed_from_u64(9);
        let mut counts = [0usize; 7];
        for _ in 0..7000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
            let i = rng.uniform_index(7);
            counts[i] += 1;
        }
        // Roughly uniform occupancy.
        for &c in &counts {
            assert!(c > 700, "bucket too empty: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "n > 0")]
    fn uniform_index_zero_panics() {
        GaussianRng::seed_from_u64(0).uniform_index(0);
    }
}
