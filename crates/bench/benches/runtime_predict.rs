//! Bench: the *runtime* cost of the fitted monitor — one voltage-map
//! prediction (and emergency decision) per sensor sample.
//!
//! The paper's Section 2.4 claims runtime evaluation is "computationally
//! cheap"; this bench quantifies it: a Q-sensor → K-block affine map.
//! Testkit timer, JSON report in `results/bench_runtime_predict.json`.

use voltsense::core::VoltageMapModel;
use voltsense::linalg::Matrix;
use voltsense::workload::GaussianRng;
use voltsense_testkit::bench::BenchTimer;

fn model(m: usize, k: usize, q: usize) -> (VoltageMapModel, Vec<f64>) {
    let mut rng = GaussianRng::seed_from_u64(3);
    let n = 500;
    let mut x = Matrix::zeros(m, n);
    for v in x.as_mut_slice() {
        *v = 0.95 + 0.02 * rng.sample();
    }
    let mut f = Matrix::zeros(k, n);
    for kk in 0..k {
        let src = rng.uniform_index(m);
        for s in 0..n {
            f[(kk, s)] = x[(src, s)] - 0.02;
        }
    }
    let sensors: Vec<usize> = (0..q).map(|i| i * (m / q)).collect();
    let model = VoltageMapModel::fit(&x, &f, &sensors).expect("fit");
    let readings: Vec<f64> = (0..q).map(|_| 0.95 + 0.02 * rng.sample()).collect();
    (model, readings)
}

fn main() {
    let mut timer = BenchTimer::new("runtime_predict");
    // Paper-scale: K = 240 blocks; Q = 16 sensors (2/core) and 56 (7/core).
    for &q in &[16usize, 56] {
        let (model, readings) = model(1024, 240, q);
        timer.bench(&format!("predict/q{q}_k240"), || {
            model.predict_from_sensors(&readings).expect("predict")
        });
    }

    // Full detection decision including the threshold scan.
    let (model, readings) = model(1024, 240, 16);
    let mut candidates = vec![0.95; 1024];
    for (i, &s) in model.sensor_indices().iter().enumerate() {
        candidates[s] = readings[i];
    }
    timer.bench("detect/q16_k240", || {
        model.detect(&candidates, 0.85).expect("detect")
    });

    timer.finish().expect("write bench report");
}
