//! Criterion bench: the *runtime* cost of the fitted monitor — one
//! voltage-map prediction (and emergency decision) per sensor sample.
//!
//! The paper's Section 2.4 claims runtime evaluation is "computationally
//! cheap"; this bench quantifies it: a Q-sensor → K-block affine map.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use voltsense::core::VoltageMapModel;
use voltsense::linalg::Matrix;
use voltsense::workload::GaussianRng;

fn model(m: usize, k: usize, q: usize) -> (VoltageMapModel, Vec<f64>) {
    let mut rng = GaussianRng::seed_from_u64(3);
    let n = 500;
    let mut x = Matrix::zeros(m, n);
    for v in x.as_mut_slice() {
        *v = 0.95 + 0.02 * rng.sample();
    }
    let mut f = Matrix::zeros(k, n);
    for kk in 0..k {
        let src = rng.uniform_index(m);
        for s in 0..n {
            f[(kk, s)] = x[(src, s)] - 0.02;
        }
    }
    let sensors: Vec<usize> = (0..q).map(|i| i * (m / q)).collect();
    let model = VoltageMapModel::fit(&x, &f, &sensors).expect("fit");
    let readings: Vec<f64> = (0..q).map(|_| 0.95 + 0.02 * rng.sample()).collect();
    (model, readings)
}

fn bench_predict(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_predict");
    // Paper-scale: K = 240 blocks; Q = 16 sensors (2/core) and 56 (7/core).
    for &q in &[16usize, 56] {
        let (model, readings) = model(1024, 240, q);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("q{q}_k240")),
            &(),
            |bench, ()| {
                bench.iter(|| model.predict_from_sensors(&readings).expect("predict"));
            },
        );
    }
    group.finish();
}

fn bench_detect(c: &mut Criterion) {
    let (model, readings) = model(1024, 240, 16);
    // Full detection decision including the threshold scan.
    let mut candidates = vec![0.95; 1024];
    for (i, &s) in model.sensor_indices().iter().enumerate() {
        candidates[s] = readings[i];
    }
    c.bench_function("runtime_detect_q16_k240", |bench| {
        bench.iter(|| model.detect(&candidates, 0.85).expect("detect"));
    });
}

criterion_group!(benches, bench_predict, bench_detect);
criterion_main!(benches);
