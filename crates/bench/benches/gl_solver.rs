//! Bench: group-lasso solver scaling (BCD vs FISTA) in the candidate count
//! M — the design-time cost of the methodology. Testkit timer, JSON report
//! in `results/bench_gl_solver.json`.

use voltsense::grouplasso::{solve_penalized, solve_penalized_fista, GlOptions, GlProblem};
use voltsense::linalg::Matrix;
use voltsense::workload::GaussianRng;
use voltsense_testkit::bench::BenchTimer;

/// Synthetic normalized problem with `m` candidates, `k` targets, `n`
/// samples; targets are mixtures of a few candidates plus noise — the
/// structure the real selection problem has.
fn problem(m: usize, k: usize, n: usize, seed: u64) -> GlProblem {
    let mut rng = GaussianRng::seed_from_u64(seed);
    let mut z = Matrix::zeros(m, n);
    for v in z.as_mut_slice() {
        *v = rng.sample();
    }
    let mut g = Matrix::zeros(k, n);
    for kk in 0..k {
        let a = rng.uniform_index(m);
        let b = rng.uniform_index(m);
        for s in 0..n {
            g[(kk, s)] = 0.8 * z[(a, s)] + 0.3 * z[(b, s)] + 0.05 * rng.sample();
        }
    }
    GlProblem::from_data(&z, &g).expect("valid problem")
}

fn main() {
    let mut timer = BenchTimer::new("gl_solver");
    for &m in &[50usize, 100, 200] {
        let p = problem(m, 30, 1000, 42);
        let mu = p.mu_max() * 0.3;
        let opts = GlOptions::default();
        timer.bench(&format!("bcd/{m}"), || {
            solve_penalized(&p, mu, &opts, None).expect("solve")
        });
        timer.bench(&format!("fista/{m}"), || {
            solve_penalized_fista(&p, mu, &opts, None).expect("solve")
        });
    }

    // The one-time O(M²N) reduction that makes solves sample-count-free.
    let mut rng = GaussianRng::seed_from_u64(7);
    let m = 200;
    let n = 2000;
    let mut z = Matrix::zeros(m, n);
    for v in z.as_mut_slice() {
        *v = rng.sample();
    }
    let mut g = Matrix::zeros(30, n);
    for v in g.as_mut_slice() {
        *v = rng.sample();
    }
    timer.bench("covariance_reduction_m200_n2000", || {
        GlProblem::from_data(&z, &g).expect("valid")
    });

    timer.finish().expect("write bench report");
}
