//! Bench: group-lasso solver scaling (BCD vs FISTA) in the candidate count
//! M — the design-time cost of the methodology. Testkit timer, JSON report
//! in `results/bench_gl_solver.json`.

use voltsense::grouplasso::{
    solve_penalized, solve_penalized_fista, GlOptions, GlProblem, HomotopySolver,
};
use voltsense::linalg::Matrix;
use voltsense::workload::GaussianRng;
use voltsense_testkit::bench::BenchTimer;

/// Synthetic normalized problem with `m` candidates, `k` targets, `n`
/// samples; targets are mixtures of a few candidates plus noise — the
/// structure the real selection problem has.
fn problem(m: usize, k: usize, n: usize, seed: u64) -> GlProblem {
    let mut rng = GaussianRng::seed_from_u64(seed);
    let mut z = Matrix::zeros(m, n);
    for v in z.as_mut_slice() {
        *v = rng.sample();
    }
    let mut g = Matrix::zeros(k, n);
    for kk in 0..k {
        let a = rng.uniform_index(m);
        let b = rng.uniform_index(m);
        for s in 0..n {
            g[(kk, s)] = 0.8 * z[(a, s)] + 0.3 * z[(b, s)] + 0.05 * rng.sample();
        }
    }
    GlProblem::from_data(&z, &g).expect("valid problem")
}

/// Synthetic *correlated* problem: candidates are mixtures of a few latent
/// factors plus small idiosyncratic noise, like neighbouring sites on a
/// power grid. Near-collinear groups are the slow case for cold BCD — and
/// the case the real selection problems live in.
fn correlated_problem(m: usize, k: usize, n: usize, factors: usize, seed: u64) -> GlProblem {
    let mut rng = GaussianRng::seed_from_u64(seed);
    let mut latent = Matrix::zeros(factors, n);
    for v in latent.as_mut_slice() {
        *v = rng.sample();
    }
    let mut z = Matrix::zeros(m, n);
    for mm in 0..m {
        // Each candidate loads mostly on one factor, with spillover onto
        // its neighbour — adjacent candidates end up highly correlated.
        let f0 = mm % factors;
        let f1 = (mm + 1) % factors;
        for s in 0..n {
            z[(mm, s)] =
                0.9 * latent[(f0, s)] + 0.45 * latent[(f1, s)] + 0.03 * rng.sample();
        }
    }
    let mut g = Matrix::zeros(k, n);
    for kk in 0..k {
        let a = rng.uniform_index(m);
        let b = rng.uniform_index(m);
        for s in 0..n {
            g[(kk, s)] = 0.8 * z[(a, s)] + 0.3 * z[(b, s)] + 0.05 * rng.sample();
        }
    }
    GlProblem::from_data(&z, &g).expect("valid problem")
}

fn main() {
    let mut timer = BenchTimer::new("gl_solver");
    for &m in &[50usize, 100, 200] {
        let p = problem(m, 30, 1000, 42);
        let mu = p.mu_max() * 0.3;
        let opts = GlOptions::default();
        timer.bench(&format!("bcd/{m}"), || {
            solve_penalized(&p, mu, &opts, None).expect("solve")
        });
        timer.bench(&format!("fista/{m}"), || {
            solve_penalized_fista(&p, mu, &opts, None).expect("solve")
        });
    }

    // Sweep-shaped workloads — the paper's Table 1 λ loop and the
    // Q-matched budget bisections. "cold" disables pruning and solves each
    // point with a fresh solver (the pre-homotopy behaviour); "homotopy"
    // chains one warm solver through the whole sweep.
    {
        let m = 100;
        let p = correlated_problem(m, 30, 1000, 12, 42);
        let mu_grid: Vec<f64> = [0.6, 0.5, 0.45, 0.3, 0.2, 0.12, 0.09, 0.07]
            .iter()
            .map(|f| p.mu_max() * f)
            .collect();
        let cold_opts = GlOptions {
            full_pass_interval: 0,
            ..GlOptions::default()
        };
        timer.bench(&format!("mu_sweep_cold/{m}"), || {
            mu_grid
                .iter()
                .map(|&mu| solve_penalized(&p, mu, &cold_opts, None).expect("solve").sweeps)
                .sum::<usize>()
        });
        timer.bench(&format!("mu_sweep_homotopy/{m}"), || {
            let mut h = HomotopySolver::new(&p, GlOptions::default()).expect("options");
            h.path(&mu_grid, 1e-3).expect("path").len()
        });

        let lambdas = [2.0, 2.5, 3.0, 3.5, 4.0, 5.0, 6.5, 8.0];
        timer.bench(&format!("lambda_sweep_cold/{m}"), || {
            // Fresh solver per budget, pruning off: every bisection
            // restarts from (0, μ_max) with cold solves.
            lambdas
                .iter()
                .map(|&l| {
                    HomotopySolver::new(&p, cold_opts.clone())
                        .expect("options")
                        .solve_constrained(l)
                        .expect("solve")
                        .budget_used
                })
                .sum::<f64>()
        });
        timer.bench(&format!("lambda_sweep_homotopy/{m}"), || {
            let mut h = HomotopySolver::new(&p, GlOptions::default()).expect("options");
            lambdas
                .iter()
                .map(|&l| h.solve_constrained(l).expect("solve").budget_used)
                .sum::<f64>()
        });
    }

    // The one-time O(M²N) reduction that makes solves sample-count-free.
    let mut rng = GaussianRng::seed_from_u64(7);
    let m = 200;
    let n = 2000;
    let mut z = Matrix::zeros(m, n);
    for v in z.as_mut_slice() {
        *v = rng.sample();
    }
    let mut g = Matrix::zeros(30, n);
    for v in g.as_mut_slice() {
        *v = rng.sample();
    }
    timer.bench("covariance_reduction_m200_n2000", || {
        GlProblem::from_data(&z, &g).expect("valid")
    });

    timer.finish().expect("write bench report");
}
