//! Criterion bench: group-lasso solver scaling (BCD vs FISTA) in the
//! candidate count M — the design-time cost of the methodology.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use voltsense::grouplasso::{solve_penalized, solve_penalized_fista, GlOptions, GlProblem};
use voltsense::linalg::Matrix;
use voltsense::workload::GaussianRng;

/// Synthetic normalized problem with `m` candidates, `k` targets, `n`
/// samples; targets are mixtures of a few candidates plus noise — the
/// structure the real selection problem has.
fn problem(m: usize, k: usize, n: usize, seed: u64) -> GlProblem {
    let mut rng = GaussianRng::seed_from_u64(seed);
    let mut z = Matrix::zeros(m, n);
    for v in z.as_mut_slice() {
        *v = rng.sample();
    }
    let mut g = Matrix::zeros(k, n);
    for kk in 0..k {
        let a = rng.uniform_index(m);
        let b = rng.uniform_index(m);
        for s in 0..n {
            g[(kk, s)] = 0.8 * z[(a, s)] + 0.3 * z[(b, s)] + 0.05 * rng.sample();
        }
    }
    GlProblem::from_data(&z, &g).expect("valid problem")
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("gl_solver");
    for &m in &[50usize, 100, 200] {
        let p = problem(m, 30, 1000, 42);
        let mu = p.mu_max() * 0.3;
        let opts = GlOptions::default();
        group.bench_with_input(BenchmarkId::new("bcd", m), &m, |bench, _| {
            bench.iter(|| solve_penalized(&p, mu, &opts, None).expect("solve"));
        });
        group.bench_with_input(BenchmarkId::new("fista", m), &m, |bench, _| {
            bench.iter(|| solve_penalized_fista(&p, mu, &opts, None).expect("solve"));
        });
    }
    group.finish();
}

fn bench_covariance_reduction(c: &mut Criterion) {
    // The one-time O(M²N) reduction that makes solves sample-count-free.
    let mut rng = GaussianRng::seed_from_u64(7);
    let m = 200;
    let n = 2000;
    let mut z = Matrix::zeros(m, n);
    for v in z.as_mut_slice() {
        *v = rng.sample();
    }
    let mut g = Matrix::zeros(30, n);
    for v in g.as_mut_slice() {
        *v = rng.sample();
    }
    c.bench_function("gl_covariance_reduction_m200_n2000", |bench| {
        bench.iter(|| GlProblem::from_data(&z, &g).expect("valid"));
    });
}

criterion_group!(benches, bench_solvers, bench_covariance_reduction);
criterion_main!(benches);
