//! Criterion bench: the power-grid transient engine — factor-once cost and
//! per-timestep solve cost on the test and paper-scale chips.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use voltsense::floorplan::{ChipConfig, ChipFloorplan};
use voltsense::powergrid::{GridConfig, GridModel, TransientSimulator};

fn bench_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("transient_step");
    for (label, cfg) in [
        ("small_2core", ChipConfig::small_test()),
        ("paper_8core", ChipConfig::xeon_e5_like()),
    ] {
        let chip = ChipFloorplan::new(&cfg).expect("chip");
        let model = GridModel::build(&chip, &GridConfig::default()).expect("grid");
        let idle = vec![0.0; chip.blocks().len()];
        let loads: Vec<f64> = chip.blocks().iter().map(|b| 0.5 * b.nominal_power()).collect();
        let mut sim = TransientSimulator::new(&model, 1.0, &idle).expect("sim");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{label}_{}nodes", model.num_nodes())),
            &(),
            |bench, ()| {
                bench.iter(|| sim.step(&loads).expect("step").len());
            },
        );
    }
    group.finish();
}

fn bench_setup(c: &mut Criterion) {
    // Construction = stamping + RCM + envelope factorization + DC solve.
    let chip = ChipFloorplan::new(&ChipConfig::xeon_e5_like()).expect("chip");
    let model = GridModel::build(&chip, &GridConfig::default()).expect("grid");
    let idle = vec![0.0; chip.blocks().len()];
    c.bench_function("transient_setup_paper_8core", |bench| {
        bench.iter(|| TransientSimulator::new(&model, 1.0, &idle).expect("sim").dt_s());
    });
}

criterion_group!(benches, bench_steps, bench_setup);
criterion_main!(benches);
