//! Bench: the power-grid transient engine — factor-once cost and
//! per-timestep solve cost on the test and paper-scale chips. Testkit
//! timer, JSON report in `results/bench_transient.json`.

use voltsense::floorplan::{ChipConfig, ChipFloorplan};
use voltsense::powergrid::{GridConfig, GridModel, TransientSimulator};
use voltsense_testkit::bench::BenchTimer;

fn main() {
    let mut timer = BenchTimer::new("transient");
    for (label, cfg) in [
        ("small_2core", ChipConfig::small_test()),
        ("paper_8core", ChipConfig::xeon_e5_like()),
    ] {
        let chip = ChipFloorplan::new(&cfg).expect("chip");
        let model = GridModel::build(&chip, &GridConfig::default()).expect("grid");
        let idle = vec![0.0; chip.blocks().len()];
        let loads: Vec<f64> = chip.blocks().iter().map(|b| 0.5 * b.nominal_power()).collect();
        let mut sim = TransientSimulator::new(&model, 1.0, &idle).expect("sim");
        timer.bench(&format!("step/{label}_{}nodes", model.num_nodes()), || {
            sim.step(&loads).expect("step").len()
        });
    }

    // Construction = stamping + RCM + envelope factorization + DC solve.
    let chip = ChipFloorplan::new(&ChipConfig::xeon_e5_like()).expect("chip");
    let model = GridModel::build(&chip, &GridConfig::default()).expect("grid");
    let idle = vec![0.0; chip.blocks().len()];
    timer.bench("setup/paper_8core", || {
        TransientSimulator::new(&model, 1.0, &idle).expect("sim").dt_s()
    });

    timer.finish().expect("write bench report");
}
