//! Bench: the OLS refit cost as the selected sensor count Q grows — the
//! per-design-point cost of the λ sweep. Testkit timer, JSON report in
//! `results/bench_ols_fit.json`.

use voltsense::core::VoltageMapModel;
use voltsense::linalg::Matrix;
use voltsense::workload::GaussianRng;
use voltsense_testkit::bench::BenchTimer;

fn data(m: usize, k: usize, n: usize) -> (Matrix, Matrix) {
    let mut rng = GaussianRng::seed_from_u64(11);
    let mut x = Matrix::zeros(m, n);
    for v in x.as_mut_slice() {
        *v = 0.95 + 0.02 * rng.sample();
    }
    let mut f = Matrix::zeros(k, n);
    for kk in 0..k {
        let src = rng.uniform_index(m);
        for s in 0..n {
            f[(kk, s)] = x[(src, s)] - 0.02 + 0.001 * rng.sample();
        }
    }
    (x, f)
}

fn main() {
    let (x, f) = data(256, 60, 2000);
    let mut timer = BenchTimer::new("ols_fit");
    for &q in &[2usize, 8, 32] {
        let sensors: Vec<usize> = (0..q).map(|i| i * (x.rows() / q)).collect();
        timer.bench(&format!("refit/q{q}"), || {
            VoltageMapModel::fit(&x, &f, &sensors).expect("fit")
        });
    }
    timer.finish().expect("write bench report");
}
