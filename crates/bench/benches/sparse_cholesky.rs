//! Bench + ablation: sparse envelope Cholesky with and without the RCM
//! ordering, on power-grid matrices of growing size. Testkit timer, JSON
//! report in `results/bench_sparse_cholesky.json`.
//!
//! DESIGN.md calls this ablation out: the envelope factorization cost is
//! quadratic in the profile, so the ordering is what makes the transient
//! engine's factor-once strategy viable.

use voltsense::sparse::{cg, CsrMatrix, EnvelopeCholesky, TripletMatrix};
use voltsense_testkit::bench::BenchTimer;

/// Grid Laplacian with pads, numbered row-major across the *long* axis —
/// the worst natural ordering.
fn grid_matrix(w: usize, h: usize) -> CsrMatrix {
    let n = w * h;
    let mut t = TripletMatrix::new(n, n);
    for y in 0..h {
        for x in 0..w {
            let i = y * w + x;
            if x + 1 < w {
                t.stamp_conductance(i, i + 1, 8.0);
            }
            if y + 1 < h {
                t.stamp_conductance(i, i + w, 8.0);
            }
            if x % 8 == 4 && y % 8 == 4 {
                t.stamp_grounded_conductance(i, 1.2);
            }
        }
    }
    t.to_csr()
}

fn main() {
    let mut timer = BenchTimer::new("sparse_cholesky");
    for &(w, h) in &[(40usize, 20usize), (71, 32), (100, 50)] {
        let a = grid_matrix(w, h);
        timer.bench(&format!("factor_rcm/{w}x{h}"), || {
            EnvelopeCholesky::factor(&a).expect("factor").profile_len()
        });
        timer.bench(&format!("factor_natural/{w}x{h}"), || {
            EnvelopeCholesky::factor_natural(&a)
                .expect("factor")
                .profile_len()
        });
    }

    // The per-timestep cost: one triangular solve on the factored matrix.
    let a = grid_matrix(71, 32);
    let chol = EnvelopeCholesky::factor(&a).expect("factor");
    let b: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.01).sin()).collect();
    let mut x = vec![0.0; a.rows()];
    let mut scratch = vec![0.0; a.rows()];
    timer.bench("solve/71x32", || {
        chol.solve_into(&b, &mut x, &mut scratch).expect("solve");
        x[0]
    });

    // Ablation: Jacobi vs IC(0) preconditioning for the iterative path.
    let b: Vec<f64> = (0..a.rows()).map(|i| ((i % 11) as f64) - 5.0).collect();
    for (label, pre) in [
        ("jacobi", cg::Preconditioner::Jacobi),
        ("ic0", cg::Preconditioner::IncompleteCholesky),
    ] {
        let opts = cg::CgOptions {
            tolerance: 1e-10,
            preconditioner: pre,
            ..cg::CgOptions::default()
        };
        timer.bench(&format!("cg_preconditioner/{label}"), || {
            cg::solve(&a, &b, &opts).expect("converges").iterations
        });
    }

    timer.finish().expect("write bench report");
}
