//! Criterion bench + ablation: sparse envelope Cholesky with and without
//! the RCM ordering, on power-grid matrices of growing size.
//!
//! DESIGN.md calls this ablation out: the envelope factorization cost is
//! quadratic in the profile, so the ordering is what makes the transient
//! engine's factor-once strategy viable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use voltsense::sparse::{CsrMatrix, EnvelopeCholesky, TripletMatrix};

/// Grid Laplacian with pads, numbered row-major across the *long* axis —
/// the worst natural ordering.
fn grid_matrix(w: usize, h: usize) -> CsrMatrix {
    let n = w * h;
    let mut t = TripletMatrix::new(n, n);
    for y in 0..h {
        for x in 0..w {
            let i = y * w + x;
            if x + 1 < w {
                t.stamp_conductance(i, i + 1, 8.0);
            }
            if y + 1 < h {
                t.stamp_conductance(i, i + w, 8.0);
            }
            if x % 8 == 4 && y % 8 == 4 {
                t.stamp_grounded_conductance(i, 1.2);
            }
        }
    }
    t.to_csr()
}

fn bench_factor(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_cholesky_factor");
    group.sample_size(20);
    for &(w, h) in &[(40usize, 20usize), (71, 32), (100, 50)] {
        let a = grid_matrix(w, h);
        group.bench_with_input(
            BenchmarkId::new("rcm", format!("{w}x{h}")),
            &(),
            |bench, ()| {
                bench.iter(|| EnvelopeCholesky::factor(&a).expect("factor").profile_len());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("natural", format!("{w}x{h}")),
            &(),
            |bench, ()| {
                bench.iter(|| {
                    EnvelopeCholesky::factor_natural(&a)
                        .expect("factor")
                        .profile_len()
                });
            },
        );
    }
    group.finish();
}

fn bench_solve(c: &mut Criterion) {
    // The per-timestep cost: one triangular solve on the factored matrix.
    let a = grid_matrix(71, 32);
    let chol = EnvelopeCholesky::factor(&a).expect("factor");
    let b: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.01).sin()).collect();
    let mut x = vec![0.0; a.rows()];
    let mut scratch = vec![0.0; a.rows()];
    c.bench_function("sparse_cholesky_solve_71x32", |bench| {
        bench.iter(|| {
            chol.solve_into(&b, &mut x, &mut scratch).expect("solve");
            x[0]
        });
    });
}

fn bench_cg_preconditioners(c: &mut Criterion) {
    // Ablation: Jacobi vs IC(0) preconditioning for the iterative path.
    use voltsense::sparse::cg;
    let a = grid_matrix(71, 32);
    let b: Vec<f64> = (0..a.rows()).map(|i| ((i % 11) as f64) - 5.0).collect();
    let mut group = c.benchmark_group("cg_preconditioner");
    group.sample_size(20);
    for (label, pre) in [
        ("jacobi", cg::Preconditioner::Jacobi),
        ("ic0", cg::Preconditioner::IncompleteCholesky),
    ] {
        let opts = cg::CgOptions {
            tolerance: 1e-10,
            preconditioner: pre,
            ..cg::CgOptions::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &(), |bench, ()| {
            bench.iter(|| cg::solve(&a, &b, &opts).expect("converges").iterations);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_factor, bench_solve, bench_cg_preconditioners);
criterion_main!(benches);
