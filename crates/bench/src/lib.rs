//! Shared harness for the experiment regenerators.
//!
//! Each binary in `src/bin/` reproduces one table or figure of the paper
//! (see DESIGN.md for the index). They all start from the same collected
//! dataset, built here.
//!
//! Scale is controlled by the `VOLTSENSE_SCALE` environment variable:
//! `paper` (default — the 8-core chip, 19 benchmarks, ~10,000 maps) or
//! `small` (the 2-core test chip, a quick smoke run).

use voltsense::scenario::{CorePartition, Scenario, ScenarioData};

/// Number of benchmarks in the suite.
pub const NUM_BENCHMARKS: usize = 19;

/// Which scale an experiment runs at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper-scale 8-core chip with ~10,000 training maps.
    Paper,
    /// The 2-core test chip with short traces.
    Small,
}

impl Scale {
    /// Reads `VOLTSENSE_SCALE` (default `paper`), via the shared env
    /// helper so spelling rules match every other knob.
    pub fn from_env() -> Scale {
        match voltsense::telemetry::env::value("VOLTSENSE_SCALE").as_deref() {
            Some(v) if v.eq_ignore_ascii_case("small") => Scale::Small,
            _ => Scale::Paper,
        }
    }
}

/// A fully-collected experiment: scenario, dataset over all benchmarks,
/// per-core partition, and the train/test split.
pub struct Experiment {
    /// The scenario (chip + grid + suite).
    pub scenario: Scenario,
    /// The full dataset across all 19 benchmarks.
    pub data: ScenarioData,
    /// Training partition (2/3 of samples).
    pub train: ScenarioData,
    /// Held-out partition (1/3 of samples).
    pub test: ScenarioData,
    /// Candidate/block-to-core assignment.
    pub partition: CorePartition,
}

impl Experiment {
    /// Simulates all 19 benchmarks at the given scale and splits the data.
    ///
    /// # Panics
    ///
    /// Panics on simulation failure — experiment binaries have no
    /// meaningful recovery path, and the message names the failing stage.
    pub fn collect(scale: Scale) -> Experiment {
        let scenario = match scale {
            Scale::Paper => Scenario::paper_scale(),
            Scale::Small => Scenario::small(),
        }
        .expect("scenario construction");
        let benchmarks: Vec<usize> = (0..NUM_BENCHMARKS).collect();
        eprintln!(
            "[experiment] simulating {NUM_BENCHMARKS} benchmarks on {} grid nodes …",
            scenario.chip().lattice().len()
        );
        let t0 = std::time::Instant::now();
        let data = scenario.collect(&benchmarks).expect("simulation");
        eprintln!(
            "[experiment] collected {} maps in {:.1?} ({} candidates, {} blocks)",
            data.num_samples(),
            t0.elapsed(),
            data.num_candidates(),
            data.num_blocks()
        );
        let (train, test) = data.split(3);
        let partition = CorePartition::from_chip(scenario.chip());
        Experiment {
            scenario,
            data,
            train,
            test,
            partition,
        }
    }

    /// Collects at the env-selected scale.
    pub fn from_env() -> Experiment {
        Experiment::collect(Scale::from_env())
    }
}

/// The workspace `results/` directory: `TESTKIT_RESULTS_DIR` if set, else
/// found by walking up to the workspace root. Delegates to the shared
/// telemetry env helper so binaries, benches, and telemetry exports all
/// drop artifacts in the same place.
pub fn results_dir() -> std::path::PathBuf {
    voltsense::telemetry::env::results_dir()
}

/// Prints a horizontal rule sized to a table width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Formats a rate like the paper's tables (4 decimal places; `0` stays
/// `0`).
pub fn fmt_rate(r: f64) -> String {
    if r == 0.0 {
        "0".to_string()
    } else {
        format!("{r:.4}")
    }
}

/// Simple ASCII sparkline of a series between its own min and max.
pub fn sparkline(values: &[f64]) -> String {
    const LEVELS: &[char] = &['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|v| {
            let idx = (((v - min) / span) * (LEVELS.len() - 1) as f64).round() as usize;
            LEVELS[idx.min(LEVELS.len() - 1)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_env_defaults_to_paper() {
        // The test harness does not set the variable.
        if std::env::var("VOLTSENSE_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Paper);
        }
    }

    #[test]
    fn fmt_rate_matches_paper_style() {
        assert_eq!(fmt_rate(0.0), "0");
        assert_eq!(fmt_rate(0.0976), "0.0976");
    }

    #[test]
    fn sparkline_has_one_char_per_value() {
        let s = sparkline(&[1.0, 2.0, 3.0, 2.0]);
        assert_eq!(s.chars().count(), 4);
    }
}
