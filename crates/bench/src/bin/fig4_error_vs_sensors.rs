//! Fig. 4 — error rates of BM4 as a function of the total number of
//! allocated sensors, Eagle-Eye vs. the proposed approach.
//!
//! Paper shape: the proposed approach's ME/TE drop quickly with more
//! sensors and beat Eagle-Eye clearly once the total sensor count is
//! moderately large (its crossover discussion: Eagle-Eye can edge out WAE
//! at very small budgets, the proposed approach wins beyond ~30–50
//! sensors).
//!
//! Run with: `cargo run --release -p voltsense-bench --bin fig4_error_vs_sensors`

use voltsense::core::{detection, MethodologyConfig};
use voltsense::eagleeye::{EagleEyeConfig, EagleEyePlacement};
use voltsense::scenario::PerCoreModel;
use voltsense_bench::{fmt_rate, rule, Experiment};

fn main() {
    let _telemetry = voltsense::telemetry::init_from_env("fig4_error_vs_sensors");
    let exp = Experiment::from_env();
    let config = MethodologyConfig::default();
    let threshold = config.emergency_threshold;
    let cores = exp.partition.num_cores();

    // BM4 test samples only (the paper's figure).
    let bm = 3;
    let sub = exp.test.benchmark_subset(bm);
    let truth = detection::ground_truth(&sub.f, threshold);
    println!(
        "{}: {} test samples, {} emergencies\n",
        exp.scenario.suite()[bm],
        sub.num_samples(),
        truth.iter().filter(|&&t| t).count()
    );

    println!(
        "{:>8} {:>8} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "q/core", "total", "EE ME", "EE WAE", "EE TE", "our ME", "our WAE", "our TE"
    );
    rule(80);
    for q_per_core in [1usize, 2, 3, 4, 6, 8] {
        let proposed =
            PerCoreModel::fit_with_sensor_count(&exp.train, &exp.partition, q_per_core, &config)
                .expect("proposed fit");
        let total = proposed.total_sensors();
        let eagle = EagleEyePlacement::place(
            &exp.train.x,
            &exp.train.f,
            total,
            &EagleEyeConfig::default(),
        )
        .expect("eagle-eye placement");

        let p = detection::evaluate(&truth, &proposed.detect_matrix(&sub.x).expect("detect"))
            .expect("evaluate");
        let e = detection::evaluate(&truth, &eagle.detect_matrix(&sub.x).expect("detect"))
            .expect("evaluate");
        println!(
            "{:>8} {:>8} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
            q_per_core,
            total,
            fmt_rate(e.miss_rate),
            fmt_rate(e.wrong_alarm_rate),
            fmt_rate(e.total_error_rate),
            fmt_rate(p.miss_rate),
            fmt_rate(p.wrong_alarm_rate),
            fmt_rate(p.total_error_rate),
        );
    }
    rule(80);
    println!(
        "\n({} cores; paper shape: proposed ME/TE fall fast with sensor count \
         and sit below Eagle-Eye at moderate budgets)",
        cores
    );
}
