//! Bench regression gate: diff a fresh `BenchTimer` report against a
//! reference report and exit non-zero when a benchmark got slower than the
//! tolerance allows.
//!
//! Usage: `bench_compare <fresh.json> <reference.json> [--tolerance <frac>]`
//!
//! Both files are `voltsense-metrics-v1` bench reports (the JSON
//! `testkit::BenchTimer` writes under `results/`). Benchmarks are matched
//! by `name`; the headline `value` (median ns) is compared. With the
//! default tolerance of 0.30 (±30%), a fresh median above `1.3 ×
//! reference` is a **regression** (fails the gate), below `0.7 ×
//! reference` is an improvement (reported, never fails — refresh the
//! reference to lock it in). A benchmark present in the reference but
//! missing from the fresh report fails; extra fresh benchmarks are noted.
//!
//! Wall-clock medians are machine-sensitive, so CI runs this as an
//! opt-in step (`VOLTSENSE_BENCH_GATE=1` in `ci.sh`); the default
//! tolerance is wide enough to catch step-change regressions, not
//! percent-level drift.

use std::process::ExitCode;

use voltsense::telemetry::json::{self, Value};

/// Default relative tolerance (±30%).
const DEFAULT_TOLERANCE: f64 = 0.30;

fn fail(msg: &str) -> ExitCode {
    eprintln!("bench_compare FAILED: {msg}");
    ExitCode::FAILURE
}

/// `(name, median_ns)` for every benchmark entry in a report.
fn benchmarks(doc: &Value, path: &str) -> Result<Vec<(String, f64)>, String> {
    if doc.get("schema").and_then(Value::as_str) != Some("voltsense-metrics-v1") {
        return Err(format!("{path}: missing or wrong \"schema\" marker"));
    }
    let entries = doc
        .get("benchmarks")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{path}: no \"benchmarks\" array (not a bench report?)"))?;
    let mut out = Vec::with_capacity(entries.len());
    for e in entries {
        let name = e
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{path}: benchmark entry without a \"name\""))?;
        let value = e
            .get("value")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{path}: benchmark {name:?} without a numeric \"value\""))?;
        out.push((name.to_string(), value));
    }
    Ok(out)
}

fn load(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    benchmarks(&doc, path)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (mut fresh_path, mut ref_path, mut tolerance) = (None, None, DEFAULT_TOLERANCE);
    while let Some(arg) = args.next() {
        if arg == "--tolerance" {
            match args.next().as_deref().map(str::parse::<f64>) {
                Some(Ok(t)) if t > 0.0 && t.is_finite() => tolerance = t,
                _ => return fail("--tolerance needs a positive fraction, e.g. 0.30"),
            }
        } else if fresh_path.is_none() {
            fresh_path = Some(arg);
        } else if ref_path.is_none() {
            ref_path = Some(arg);
        } else {
            return fail("usage: bench_compare <fresh.json> <reference.json> [--tolerance <frac>]");
        }
    }
    let (Some(fresh_path), Some(ref_path)) = (fresh_path, ref_path) else {
        return fail("usage: bench_compare <fresh.json> <reference.json> [--tolerance <frac>]");
    };

    let fresh = match load(&fresh_path) {
        Ok(b) => b,
        Err(e) => return fail(&e),
    };
    let reference = match load(&ref_path) {
        Ok(b) => b,
        Err(e) => return fail(&e),
    };

    let mut regressions = 0usize;
    println!(
        "{:<32} {:>14} {:>14} {:>9}  verdict (tolerance ±{:.0}%)",
        "benchmark",
        "reference ns",
        "fresh ns",
        "ratio",
        tolerance * 100.0
    );
    for (name, ref_ns) in &reference {
        let Some((_, fresh_ns)) = fresh.iter().find(|(n, _)| n == name) else {
            println!("{name:<32} {ref_ns:>14.0} {:>14} {:>9}  MISSING from fresh report", "—", "—");
            regressions += 1;
            continue;
        };
        let ratio = fresh_ns / ref_ns.max(f64::MIN_POSITIVE);
        let verdict = if ratio > 1.0 + tolerance {
            regressions += 1;
            "REGRESSION"
        } else if ratio < 1.0 - tolerance {
            "improved (refresh the reference)"
        } else {
            "ok"
        };
        println!("{name:<32} {ref_ns:>14.0} {fresh_ns:>14.0} {ratio:>8.2}x  {verdict}");
    }
    for (name, _) in &fresh {
        if !reference.iter().any(|(n, _)| n == name) {
            println!("{name:<32} (new benchmark, no reference — not compared)");
        }
    }

    if regressions > 0 {
        eprintln!("bench_compare: {regressions} regression(s) beyond ±{tolerance:.2}");
        return ExitCode::FAILURE;
    }
    println!("bench_compare: no regressions beyond ±{tolerance:.2}");
    ExitCode::SUCCESS
}
