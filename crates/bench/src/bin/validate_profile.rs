//! CI profile-endpoint validator.
//!
//! Usage: `validate_profile <addr | @addr-file> [--under <parent>]
//! [--expect-top <p>]...`
//!
//! Scrapes a live `telemetry::serve` endpoint (`<addr>` is `host:port`;
//! `@file` reads the address from the file written via
//! `VOLTSENSE_TELEMETRY_ADDR_FILE`, polling up to 60 s) and asserts what
//! the profiling smoke promises:
//!
//! * `GET /profile` answers 200 with a parseable `voltsense-profile-v1`
//!   document: positive `hz`, at least one sampled thread, a non-empty
//!   `stacks` array whose counts sum to `samples`, and the allocation
//!   accountant section reporting whether the counting allocator is
//!   installed;
//! * `GET /profile?format=collapsed` answers 200 with non-empty
//!   flamegraph-compatible text — every line round-trip parses as
//!   `frame;frame;leaf count`, counts descending;
//! * with `--expect-top <p>` (repeatable, any-of), the hottest sampled
//!   frame must start with one of the prefixes. `--under <parent>`
//!   scopes the tally to frames nested *below* a frame matching the
//!   parent prefix — CI passes `--under methodology. --expect-top gl.`
//!   on a seeded `table2_error_rates` run, pinning end-to-end
//!   attribution: the solver's hottest sampled callee must be one of
//!   the group-lasso solver spans (`gl.bcd.*` / `gl.fista.*`), not some
//!   untracked frame.
//!
//! The endpoint is polled until every assertion holds (the workload may
//! still be warming up on the first scrapes) or a 120 s deadline passes.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use voltsense::telemetry::json::{self, Value};

fn fail(msg: &str) -> ExitCode {
    eprintln!("profile validation FAILED: {msg}");
    ExitCode::FAILURE
}

/// One plain HTTP/1.1 GET; returns (status code, body).
fn get(addr: &str, path: &str) -> Result<(u32, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")
                .as_bytes(),
        )
        .map_err(|e| format!("send request: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read response: {e}"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("{path}: malformed HTTP response"))?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u32>().ok())
        .ok_or_else(|| format!("{path}: missing status code"))?;
    Ok((status, body.to_string()))
}

/// Resolve `addr` or `@file` (polling for the file like `scrape_endpoint`).
fn resolve_addr(arg: &str) -> Result<String, String> {
    let Some(path) = arg.strip_prefix('@') else {
        return Ok(arg.to_string());
    };
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match std::fs::read_to_string(path) {
            Ok(s) if !s.trim().is_empty() => return Ok(s.trim().to_string()),
            _ if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(100)),
            _ => return Err(format!("address file {path} never appeared")),
        }
    }
}

/// Structural check of the `voltsense-profile-v1` JSON; returns the
/// reported total sample count.
fn validate_json(body: &str) -> Result<u64, String> {
    let doc = json::parse(body).map_err(|e| format!("/profile: {e}"))?;
    if doc.get("schema").and_then(Value::as_str) != Some("voltsense-profile-v1") {
        return Err("/profile: missing or wrong \"schema\" marker".into());
    }
    let hz = doc
        .get("hz")
        .and_then(Value::as_f64)
        .ok_or("/profile: missing numeric \"hz\"")?;
    if !(hz > 0.0) {
        return Err(format!("/profile: non-positive hz {hz}"));
    }
    for key in ["passes", "samples", "idle_samples", "unstable_reads"] {
        if doc.get(key).and_then(Value::as_f64).is_none() {
            return Err(format!("/profile: missing numeric \"{key}\""));
        }
    }
    let samples = doc.get("samples").and_then(Value::as_f64).unwrap_or(0.0) as u64;
    let Some(Value::Array(threads)) = doc.get("threads") else {
        return Err("/profile: \"threads\" is not an array".into());
    };
    if threads.is_empty() {
        return Err("/profile: no sampled threads".into());
    }
    let Some(Value::Array(stacks)) = doc.get("stacks") else {
        return Err("/profile: \"stacks\" is not an array".into());
    };
    let mut stack_sum = 0u64;
    for entry in stacks {
        let Some(Value::Array(frames)) = entry.get("stack") else {
            return Err("/profile: stack entry without a \"stack\" array".into());
        };
        if frames.iter().any(|f| f.as_str().map_or(true, str::is_empty)) {
            return Err("/profile: empty frame name in a stack".into());
        }
        stack_sum += entry
            .get("count")
            .and_then(Value::as_f64)
            .ok_or("/profile: stack entry without a count")? as u64;
    }
    let idle = doc.get("idle_samples").and_then(Value::as_f64).unwrap_or(0.0) as u64;
    if stack_sum + idle != samples {
        return Err(format!(
            "/profile: stack counts ({stack_sum}) + idle ({idle}) != samples ({samples})"
        ));
    }
    let Some(alloc) = doc.get("alloc") else {
        return Err("/profile: missing \"alloc\" section".into());
    };
    if alloc.get("allocator_installed").is_none() {
        return Err("/profile: alloc section lacks \"allocator_installed\"".into());
    }
    Ok(samples)
}

/// Parse one collapsed line into (stack, count).
fn parse_collapsed_line(line: &str) -> Result<(&str, u64), String> {
    let (stack, count) = line
        .rsplit_once(' ')
        .ok_or_else(|| format!("collapsed line without a count: {line:?}"))?;
    let count = count
        .parse::<u64>()
        .map_err(|_| format!("unparseable collapsed count: {line:?}"))?;
    if stack.is_empty() || stack.split(';').any(str::is_empty) {
        return Err(format!("empty frame in collapsed stack: {line:?}"));
    }
    Ok((stack, count))
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(addr_arg) = args.next() else {
        return fail(
            "usage: validate_profile <addr | @addr-file> [--under <parent>] [--expect-top <p>]...",
        );
    };
    let mut under: Option<String> = None;
    let mut expect_top: Vec<String> = Vec::new();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--under" => match args.next() {
                Some(p) => under = Some(p),
                None => return fail("--under needs a value"),
            },
            "--expect-top" => match args.next() {
                Some(p) => expect_top.push(p),
                None => return fail("--expect-top needs a value"),
            },
            other => return fail(&format!("unknown flag {other:?}")),
        }
    }
    let addr = match resolve_addr(&addr_arg) {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };

    // The endpoint comes up before the workload has run anything worth
    // sampling, so poll: keep scraping until every expectation holds (the
    // steady state once the workload finishes and the process lingers) or
    // the deadline passes — then report the last failure.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        match attempt(&addr, under.as_deref(), &expect_top) {
            Ok(summary) => {
                println!("{summary}");
                return ExitCode::SUCCESS;
            }
            Err(e) if Instant::now() >= deadline => return fail(&e),
            Err(_) => std::thread::sleep(Duration::from_millis(500)),
        }
    }
}

/// One full scrape-and-validate pass; returns the success summary line.
fn attempt(addr: &str, under: Option<&str>, expect_top: &[String]) -> Result<String, String> {
    let (status, body) = get(addr, "/profile")?;
    if status != 200 {
        return Err(format!("/profile answered {status}"));
    }
    let samples = validate_json(&body)?;
    if samples == 0 {
        return Err("/profile reports zero samples — sampler never ran".into());
    }

    let (status, collapsed) = get(addr, "/profile?format=collapsed")?;
    if status != 200 {
        return Err(format!("/profile?format=collapsed answered {status}"));
    }
    let mut lines = 0u64;
    let mut prev_count = u64::MAX;
    // Per-frame inclusive sample tally, optionally scoped to frames
    // nested below a frame matching the `--under` prefix.
    let mut frame_counts: Vec<(String, u64)> = Vec::new();
    for line in collapsed.lines() {
        let (stack, count) = parse_collapsed_line(line)?;
        if count > prev_count {
            return Err(format!("collapsed counts not descending at {line:?}"));
        }
        prev_count = count;
        lines += 1;
        if stack == "(idle)" {
            continue;
        }
        let mut in_scope = under.is_none();
        for frame in stack.split(';') {
            if in_scope {
                match frame_counts.iter_mut().find(|(f, _)| f == frame) {
                    Some((_, c)) => *c += count,
                    None => frame_counts.push((frame.to_string(), count)),
                }
            }
            if let Some(parent) = under {
                if frame.starts_with(parent) {
                    in_scope = true;
                }
            }
        }
    }
    if lines == 0 {
        return Err("collapsed output is empty".into());
    }

    let hottest = frame_counts.iter().max_by_key(|(_, c)| *c);
    if !expect_top.is_empty() {
        let scope = under.unwrap_or("(root)");
        let Some((frame, _)) = hottest else {
            return Err(format!("no frames sampled under {scope:?}"));
        };
        if !expect_top.iter().any(|p| frame.starts_with(p.as_str())) {
            return Err(format!(
                "hottest frame under {scope:?} is {frame:?}, matches none of {expect_top:?}"
            ));
        }
    }

    Ok(format!(
        "profile endpoint OK: {samples} samples, {lines} collapsed stacks{}",
        match hottest {
            Some((frame, count)) => format!(
                ", hottest frame{} {frame} ({count} samples)",
                match under {
                    Some(p) => format!(" under {p}"),
                    None => String::new(),
                }
            ),
            None => String::new(),
        }
    ))
}
