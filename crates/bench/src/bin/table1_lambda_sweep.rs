//! Table 1 — λ vs. the number of sensors per core and the aggregated
//! relative prediction error.
//!
//! Paper row (for reference):
//! λ                  10    20    30    40    50    60
//! sensors/core        2     4     7    10    13    16
//! relative error %  0.51  0.25  0.11  0.06  0.05  0.04
//!
//! Shape targets: sensors monotone increasing in λ; error monotone
//! decreasing, < 1e-2 already at the smallest budget.
//!
//! Run with: `cargo run --release -p voltsense-bench --bin table1_lambda_sweep`

use voltsense::core::MethodologyConfig;
use voltsense::scenario::PerCoreModel;
use voltsense_bench::{rule, Experiment};

fn main() {
    let _telemetry = voltsense::telemetry::init_from_env("table1_lambda_sweep");
    let exp = Experiment::from_env();
    let lambdas = [10.0, 20.0, 30.0, 40.0, 50.0, 60.0];

    println!(
        "{:>8}  {:>14}  {:>16}  {:>12}",
        "lambda", "sensors/core", "relative error %", "TE rate"
    );
    rule(58);

    let paper_sensors = [2, 4, 7, 10, 13, 16];
    let paper_error = [0.51, 0.25, 0.11, 0.06, 0.05, 0.04];

    // One warm-started homotopy per core carries the whole λ sweep.
    match PerCoreModel::fit_sweep(
        &exp.train,
        &exp.partition,
        &lambdas,
        &MethodologyConfig::default(),
    ) {
        Ok(models) => {
            for (model, &lambda) in models.iter().zip(&lambdas) {
                let per_core =
                    model.total_sensors() as f64 / exp.partition.num_cores() as f64;
                let report = model.evaluate(&exp.test).expect("evaluation");
                println!(
                    "{lambda:>8.0}  {per_core:>14.1}  {:>16.4}  {:>12.4}",
                    report.relative_error * 100.0,
                    report.detection.total_error_rate
                );
            }
        }
        Err(e) => println!("sweep fit failed: {e}"),
    }
    rule(58);

    // Part B: match the paper's sensor counts directly — Table 1's real
    // content is the (Q, error) trade-off; the absolute λ→Q mapping
    // depends on the substrate's correlation structure.
    println!("\nQ-matched comparison (budget bisected per core to hit the paper's Q):");
    println!(
        "{:>14}  {:>12}  {:>16}  {:>16}",
        "target Q/core", "eff. budget", "our rel err %", "paper rel err %"
    );
    rule(64);
    // The per-core Q bisections share one warm chain per core too.
    match PerCoreModel::fit_with_sensor_count_sweep(
        &exp.train,
        &exp.partition,
        &paper_sensors,
        &MethodologyConfig::default(),
    ) {
        Ok(models) => {
            for (i, (model, &q)) in models.iter().zip(&paper_sensors).enumerate() {
                let report = model.evaluate(&exp.test).expect("evaluation");
                let eff_budget: f64 = model
                    .fits()
                    .iter()
                    .map(|f| f.fitted.selection().budget_used)
                    .sum::<f64>()
                    / model.fits().len() as f64;
                let achieved =
                    model.total_sensors() as f64 / exp.partition.num_cores() as f64;
                println!(
                    "{:>8} ({achieved:>4.1})  {eff_budget:>12.2}  {:>16.4}  {:>16.2}",
                    q,
                    report.relative_error * 100.0,
                    paper_error[i]
                );
            }
        }
        Err(e) => println!("sweep fit failed: {e}"),
    }
    rule(64);
    println!(
        "\nshape targets: sensors monotone in λ; error monotone decreasing in Q\n\
         and well below 1% already at 2 sensors/core — both hold above."
    );
}
