//! CI live-endpoint scraper: a real HTTP client for the telemetry server.
//!
//! Usage: `scrape_endpoint <addr | @addr-file> [--fleet]`
//!
//! Performs `GET /metrics` and `GET /snapshot` against a running
//! `telemetry::serve` endpoint (`<addr>` is `host:port`; `@file` reads the
//! address from the file `telemetry::serve` wrote via
//! `VOLTSENSE_TELEMETRY_ADDR_FILE`, polling up to 60 s for it to appear)
//! and asserts what the CI gate promises:
//!
//! * `/metrics` answers 200 with valid Prometheus text exposition — every
//!   sample line round-trip parses as `name[{labels}] value`, and the
//!   document contains at least one counter (`_total`), one gauge, and
//!   one histogram quantile sample;
//! * `/snapshot` answers 200 with a parseable `voltsense-metrics-v1`
//!   JSON document (validated with the in-tree parser).
//!
//! With `--fleet` (scraping a fleet soak) it additionally requires:
//!
//! * `/trace` serves a `voltsense-trace-v1` document where at least one
//!   tenant holds a tail-sampled trace with a 16-hex trace ID, a positive
//!   total, and all five stage spans, and some tenant's deterministic
//!   1-in-k sample ring is non-empty;
//! * `/slo` serves a `voltsense-slo-v1` document with a non-zero burn
//!   rate and at least one fast-burn page across tenants;
//! * `/healthz` answers 200 with the structured fleet health body.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use voltsense::telemetry::json::{self, Value};

fn fail(msg: &str) -> ExitCode {
    eprintln!("endpoint scrape FAILED: {msg}");
    ExitCode::FAILURE
}

/// One plain HTTP/1.1 GET; returns (status code, body).
fn get(addr: &str, path: &str) -> Result<(u32, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes())
        .map_err(|e| format!("send request: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read response: {e}"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("{path}: malformed HTTP response"))?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u32>().ok())
        .ok_or_else(|| format!("{path}: missing status code"))?;
    Ok((status, body.to_string()))
}

/// Round-trip parse of one exposition sample line:
/// `name[{label="value",...}] number`. Returns (metric name, has labels).
fn parse_sample_line(line: &str) -> Result<(String, bool), String> {
    let (name_part, value_part) = line
        .rsplit_once(' ')
        .ok_or_else(|| format!("sample line without a value: {line:?}"))?;
    let (name, labels) = match name_part.split_once('{') {
        Some((name, rest)) => {
            if !rest.ends_with('}') {
                return Err(format!("unterminated label set: {line:?}"));
            }
            (name, true)
        }
        None => (name_part, false),
    };
    if name.is_empty()
        || !name
            .chars()
            .enumerate()
            .all(|(i, c)| c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit()))
    {
        return Err(format!("invalid metric name {name:?} in {line:?}"));
    }
    let ok_value = matches!(value_part, "NaN" | "+Inf" | "-Inf")
        || value_part.parse::<f64>().is_ok();
    if !ok_value {
        return Err(format!("unparseable sample value {value_part:?} in {line:?}"));
    }
    Ok((name.to_string(), labels))
}

/// Why a `/metrics` attempt did not produce usable counts.
enum Scrape {
    /// Transient: connection refused, non-200, empty content — retryable.
    Unavailable(String),
    /// The server answered with invalid exposition text — fatal.
    Malformed(String),
}

/// One `/metrics` scrape, parsed; returns
/// `(counter TYPEs, gauge samples, quantile samples, total samples)`.
fn scrape_metrics(addr: &str) -> Result<(usize, usize, usize, usize), Scrape> {
    let (status, body) = get(addr, "/metrics").map_err(Scrape::Unavailable)?;
    if status != 200 {
        return Err(Scrape::Unavailable(format!("/metrics answered {status}")));
    }
    let (mut counters, mut gauges, mut quantiles, mut samples) = (0, 0, 0, 0);
    let mut gauge_names: Vec<String> = Vec::new();
    for line in body.lines().filter(|l| !l.is_empty()) {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (name, kind) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
            match kind {
                "counter" => counters += 1,
                "gauge" => gauge_names.push(name.to_string()),
                _ => {}
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (name, _) = parse_sample_line(line).map_err(Scrape::Malformed)?;
        samples += 1;
        if line.contains("quantile=\"") {
            quantiles += 1;
        }
        if gauge_names.contains(&name) {
            gauges += 1;
        }
    }
    Ok((counters, gauges, quantiles, samples))
}

/// Stage names, in wire order, that every complete trace record carries.
const STAGES: [&str; 5] = ["decode", "shard", "predict", "decide", "respond"];

/// One `/trace` scrape: schema + record completeness. Returns the number
/// of complete slowest-N records. `Unavailable` while the buffer is still
/// empty (the soak may not have served a reading yet), `Malformed` if a
/// present record violates the document contract.
fn scrape_trace(addr: &str) -> Result<usize, Scrape> {
    let (status, body) = get(addr, "/trace").map_err(Scrape::Unavailable)?;
    if status != 200 {
        return Err(Scrape::Unavailable(format!("/trace answered {status}")));
    }
    let doc = json::parse(&body).map_err(|e| Scrape::Malformed(format!("/trace: {e}")))?;
    if doc.get("schema").and_then(Value::as_str) != Some("voltsense-trace-v1") {
        return Err(Scrape::Malformed("/trace: missing voltsense-trace-v1 schema".into()));
    }
    let mut complete = 0usize;
    let mut sampled_seen = false;
    for t in doc.get("tenants").and_then(Value::as_array).unwrap_or(&[]) {
        for rec in t.get("slowest").and_then(Value::as_array).unwrap_or(&[]) {
            let total = rec.get("total_ns").and_then(Value::as_f64).unwrap_or(0.0);
            let id_ok = rec
                .get("trace_id")
                .and_then(Value::as_str)
                .map_or(false, |s| s.len() == 16 && s.chars().all(|c| c.is_ascii_hexdigit()));
            let stages = rec.get("stages");
            let stages_ok = STAGES.iter().all(|s| {
                stages
                    .and_then(|v| v.get(s))
                    .and_then(|v| v.get("ns"))
                    .and_then(Value::as_f64)
                    .is_some()
            });
            if !(total > 0.0 && id_ok && stages_ok) {
                return Err(Scrape::Malformed(format!(
                    "/trace: incomplete record (total {total}, id_ok {id_ok}, stages_ok {stages_ok})"
                )));
            }
            complete += 1;
        }
        if !t.get("sampled").and_then(Value::as_array).unwrap_or(&[]).is_empty() {
            sampled_seen = true;
        }
    }
    if complete == 0 || !sampled_seen {
        return Err(Scrape::Unavailable(format!(
            "/trace has {complete} complete tail records, sample ring {}",
            if sampled_seen { "populated" } else { "empty" }
        )));
    }
    Ok(complete)
}

/// One `/slo` scrape: schema + evidence the burn engine is live. Returns
/// (total pages, max burn across tenants/windows). `Unavailable` until
/// some tenant burns budget and a fast-burn page has fired.
fn scrape_slo(addr: &str) -> Result<(u64, f64), Scrape> {
    let (status, body) = get(addr, "/slo").map_err(Scrape::Unavailable)?;
    if status != 200 {
        return Err(Scrape::Unavailable(format!("/slo answered {status}")));
    }
    let doc = json::parse(&body).map_err(|e| Scrape::Malformed(format!("/slo: {e}")))?;
    if doc.get("schema").and_then(Value::as_str) != Some("voltsense-slo-v1") {
        return Err(Scrape::Malformed("/slo: missing voltsense-slo-v1 schema".into()));
    }
    let mut pages = 0.0f64;
    let mut max_burn = 0.0f64;
    for t in doc.get("tenants").and_then(Value::as_array).unwrap_or(&[]) {
        pages += t.get("pages").and_then(Value::as_f64).unwrap_or(0.0);
        for sli in ["latency", "availability"] {
            for window in ["burn_5m", "burn_1h"] {
                let burn = t
                    .get(sli)
                    .and_then(|v| v.get(window))
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0);
                max_burn = max_burn.max(burn);
            }
        }
    }
    if pages < 1.0 || max_burn <= 0.0 {
        return Err(Scrape::Unavailable(format!(
            "/slo shows {pages:.0} pages, max burn {max_burn}"
        )));
    }
    Ok((pages as u64, max_burn))
}

fn scrape_msg(e: &Scrape) -> &str {
    match e {
        Scrape::Unavailable(m) | Scrape::Malformed(m) => m,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fleet = args.iter().any(|a| a == "--fleet");
    let Some(arg) = args.iter().find(|a| !a.starts_with("--")).cloned() else {
        return fail("usage: scrape_endpoint <addr | @addr-file> [--fleet]");
    };
    let addr = if let Some(path) = arg.strip_prefix('@') {
        // The server process writes its bound address once it is up.
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            match std::fs::read_to_string(path) {
                Ok(s) if !s.trim().is_empty() => break s.trim().to_string(),
                _ if Instant::now() >= deadline => {
                    return fail(&format!("address file {path} did not appear within 60s"));
                }
                _ => std::thread::sleep(Duration::from_millis(100)),
            }
        }
    } else {
        arg
    };

    // --- /metrics ----------------------------------------------------
    // Retried: the endpoint comes up before the process records its first
    // signal, so an early scrape may see an (already valid) empty registry.
    // Malformed exposition output fails immediately; missing content is
    // given time to appear.
    let deadline = Instant::now() + Duration::from_secs(60);
    let (counters, gauges, quantiles, samples) = loop {
        match scrape_metrics(&addr) {
            Ok(counts @ (counters, gauges, quantiles, _)) => {
                if counters > 0 && gauges > 0 && quantiles > 0 {
                    break counts;
                }
                if Instant::now() >= deadline {
                    return fail(&format!(
                        "/metrics never exposed a counter + gauge + quantile \
                         (saw {counters} counters, {gauges} gauge samples, {quantiles} quantiles)"
                    ));
                }
            }
            Err(Scrape::Malformed(e)) => return fail(&e),
            Err(Scrape::Unavailable(e)) => {
                if Instant::now() >= deadline {
                    return fail(&e);
                }
            }
        }
        std::thread::sleep(Duration::from_millis(200));
    };

    // --- /snapshot ---------------------------------------------------
    let (status, body) = match get(&addr, "/snapshot") {
        Ok(r) => r,
        Err(e) => return fail(&e),
    };
    if status != 200 {
        return fail(&format!("/snapshot answered {status}"));
    }
    let doc = match json::parse(&body) {
        Ok(v) => v,
        Err(e) => return fail(&format!("/snapshot: {e}")),
    };
    if doc.get("schema").and_then(Value::as_str) != Some("voltsense-metrics-v1") {
        return fail("/snapshot: missing or wrong \"schema\" marker");
    }
    let events = doc
        .get("events")
        .and_then(Value::as_array)
        .map_or(0, <[Value]>::len);

    // --- fleet mode: /trace, /slo, /healthz --------------------------
    // Retried like /metrics: the routes answer valid empty documents
    // from the first request, and fill in as the soak serves readings
    // (traces), burns budget, and pages (SLO).
    if fleet {
        let deadline = Instant::now() + Duration::from_secs(60);
        let (tail_records, pages, max_burn) = loop {
            match (scrape_trace(&addr), scrape_slo(&addr)) {
                (Ok(n), Ok((pages, burn))) => break (n, pages, burn),
                (Err(e @ Scrape::Malformed(_)), _) | (_, Err(e @ Scrape::Malformed(_))) => {
                    return fail(scrape_msg(&e));
                }
                (tr, sr) => {
                    if Instant::now() >= deadline {
                        let why: Vec<&str> =
                            [tr.as_ref().err(), sr.as_ref().err()].iter().flatten().map(|e| scrape_msg(e)).collect();
                        return fail(&format!(
                            "fleet routes never became complete: {}",
                            why.join("; ")
                        ));
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(200));
        };
        let (status, body) = match get(&addr, "/healthz") {
            Ok(r) => r,
            Err(e) => return fail(&e),
        };
        if status != 200 {
            return fail(&format!("/healthz answered {status} during a healthy soak"));
        }
        let health_status = json::parse(&body)
            .ok()
            .and_then(|doc| doc.get("status").and_then(Value::as_str).map(str::to_string));
        if health_status.as_deref() != Some("ok") {
            return fail(&format!(
                "/healthz did not serve the structured fleet body, got: {}",
                body.trim()
            ));
        }
        println!(
            "fleet routes passed: {tail_records} tail-sampled traces, \
             {pages} fast-burn pages, max burn {max_burn:.1}, healthz ok"
        );
    }

    println!(
        "endpoint scrape passed: {samples} exposition samples \
         ({counters} counters, {gauges} gauge samples, {quantiles} quantile samples), \
         snapshot with {events} ring events"
    );
    ExitCode::SUCCESS
}
