//! Fig. 1 — `‖β_m‖₂` for the sensor candidates of one core, at λ = 10 and
//! λ = 30.
//!
//! Paper shape: most candidates sit at ~1e-5…1e-10 while the selected few
//! are orders of magnitude above the threshold T = 1e-3, so the threshold
//! separates them trivially.
//!
//! Run with: `cargo run --release -p voltsense-bench --bin fig1_beta_norms`

use voltsense::core::SensorSelector;
use voltsense::floorplan::CoreId;
use voltsense_bench::{rule, Experiment};

fn main() {
    let _telemetry = voltsense::telemetry::init_from_env("fig1_beta_norms");
    let exp = Experiment::from_env();

    // One core's candidates and blocks, as in the paper's figure.
    let core = CoreId(0);
    let cand = exp.partition.candidates_of(core);
    let blocks = exp.partition.blocks_of(core);
    let sub = exp.train.restrict(cand, blocks);
    println!(
        "core {core}: {} candidates, {} blocks, {} training maps\n",
        cand.len(),
        blocks.len(),
        sub.num_samples()
    );

    let mut per_lambda = Vec::new();
    for lambda in [10.0, 30.0] {
        let selector = SensorSelector::new(lambda, 1e-3).expect("selector");
        let result = selector.select(&sub.x, &sub.f).expect("selection");
        println!(
            "λ = {lambda}: {} sensors selected (budget used {:.3}, μ = {:.3e})",
            result.num_selected(),
            result.budget_used,
            result.mu
        );
        per_lambda.push(result);
    }
    println!();

    // The figure: per-candidate norms under both lambdas, log-scale bands.
    println!("{:>6}  {:>12}  {:>12}", "cand", "‖β‖ (λ=10)", "‖β‖ (λ=30)");
    rule(36);
    let m = per_lambda[0].group_norms.len();
    for c in 0..m {
        let n10 = per_lambda[0].group_norms[c];
        let n30 = per_lambda[1].group_norms[c];
        if n10 > 1e-3 || n30 > 1e-3 {
            println!("{c:>6}  {n10:>12.3e}  {n30:>12.3e}   <-- selected");
        }
    }
    rule(36);

    // Band statistics of the unselected mass.
    for (label, result) in ["λ=10", "λ=30"].iter().zip(&per_lambda) {
        let mut unselected: Vec<f64> = result
            .group_norms
            .iter()
            .enumerate()
            .filter(|(c, _)| !result.selected.contains(c))
            .map(|(_, &n)| n)
            .collect();
        unselected.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = unselected.get(unselected.len() / 2).copied().unwrap_or(0.0);
        let max = unselected.last().copied().unwrap_or(0.0);
        let sel_min = result
            .selected
            .iter()
            .map(|&c| result.group_norms[c])
            .fold(f64::INFINITY, f64::min);
        let separation = if max == 0.0 {
            "infinite (BCD drives unselected groups to exact zero; the \
             paper's interior-point solver leaves 1e-5…1e-10 residuals)"
                .to_string()
        } else {
            format!("x{:.0}", sel_min / max)
        };
        println!(
            "{label}: unselected median {median:.1e}, max {max:.1e}; \
             smallest selected {sel_min:.1e}  (separation {separation})"
        );
    }
    println!(
        "\npaper shape check: selected norms >> T = 1e-3 >> unselected norms; \
         λ=30 selects more sensors than λ=10: {} vs {}",
        per_lambda[1].num_selected(),
        per_lambda[0].num_selected()
    );
}
