//! Extension — sensors inside the function area.
//!
//! The paper closes its evaluation noting: "it is possible for the
//! designers to place the sensors inside the function area, to further
//! improve the prediction accuracy of our model and therefore achieve
//! smaller error rates." This experiment quantifies that claim: the same
//! methodology, at matched sensor counts, with candidates restricted to
//! the blank area (the paper's setting) vs. allowed anywhere on the die.
//!
//! Run with: `cargo run --release -p voltsense-bench --bin ext_fa_sensors`

use voltsense::core::{detection, Methodology, MethodologyConfig};
use voltsense::scenario::{CollectOptions, SensorSites};
use voltsense_bench::{fmt_rate, rule, Experiment, Scale};

fn main() {
    let _telemetry = voltsense::telemetry::init_from_env("ext_fa_sensors");
    let exp = Experiment::from_env();

    // Re-collect with FA candidates allowed (the voltage maps are
    // identical; only the candidate set grows).
    let scenario = match Scale::from_env() {
        Scale::Paper => voltsense::scenario::Scenario::paper_scale(),
        Scale::Small => voltsense::scenario::Scenario::small(),
    }
    .expect("scenario");
    let anywhere = scenario
        .collect_with(
            &(0..voltsense_bench::NUM_BENCHMARKS).collect::<Vec<_>>(),
            &CollectOptions {
                sensor_sites: SensorSites::Anywhere,
                ..CollectOptions::default()
            },
        )
        .expect("collect with FA sites");
    let (train_fa, test_fa) = anywhere.split(3);
    println!(
        "candidates: {} blank-area only, {} anywhere\n",
        exp.data.num_candidates(),
        anywhere.num_candidates()
    );

    println!(
        "{:>8} | {:>10} {:>14} {:>8} | {:>10} {:>14} {:>8}",
        "Q", "BA-only Q", "BA rel err", "BA TE", "FA-ok Q", "FA rel err", "FA TE"
    );
    rule(84);
    for q in [8usize, 16, 32] {
        let config = MethodologyConfig::default();
        let ba = Methodology::fit_with_sensor_count(&exp.train.x, &exp.train.f, q, &config)
            .expect("BA fit");
        let fa = Methodology::fit_with_sensor_count(&train_fa.x, &train_fa.f, q, &config)
            .expect("FA fit");

        let ba_report = ba.evaluate(&exp.test.x, &exp.test.f).expect("BA eval");
        let fa_report = fa.evaluate(&test_fa.x, &test_fa.f).expect("FA eval");
        println!(
            "{q:>8} | {:>10} {:>14.4e} {:>8} | {:>10} {:>14.4e} {:>8}",
            ba.sensors().len(),
            ba_report.relative_error,
            fmt_rate(ba_report.detection.total_error_rate),
            fa.sensors().len(),
            fa_report.relative_error,
            fmt_rate(fa_report.detection.total_error_rate),
        );
    }
    rule(84);

    // How many of the FA-allowed sensors actually land in the FA?
    let config = MethodologyConfig::default();
    let fa = Methodology::fit_with_sensor_count(&train_fa.x, &train_fa.f, 16, &config)
        .expect("FA fit");
    let lattice = scenario.chip().lattice();
    let in_fa = fa
        .sensors()
        .iter()
        .filter(|&&s| {
            matches!(
                lattice.site(anywhere.candidate_nodes[s]),
                voltsense::floorplan::NodeSite::FunctionArea(_)
            )
        })
        .count();
    println!(
        "\nwith 16 sensors allowed anywhere, {in_fa} land inside the function area."
    );
    println!(
        "\nthe paper hypothesizes FA placement would \"further improve the\n\
         prediction accuracy\"; on this substrate the gain is negligible —\n\
         which *strengthens* the paper's own premise: blank-area nodes are\n\
         so strongly correlated with the critical nodes (its observation 2)\n\
         that the selector loses nothing by being confined to the BA."
    );
    let _ = detection::ground_truth(&exp.test.f, 0.85); // keep detection linked for context
}
