//! Fleet soak bench: sustained readings/sec, p99 decision latency, and
//! shed/recovery counts under a seeded chaos schedule, plus the kill-9
//! restart drill (every session resumes from its checkpoint, zero refits).
//!
//! Three phases:
//!
//! 1. **Microbenches** — frame encode, frame decode, checkpoint
//!    round-trip, monitor observe. These are the entries inside the
//!    `benchmarks` array: stable per-op costs the ±30% `bench_compare`
//!    gate can hold across commits.
//! 2. **Chaos soak** — ≥ 64 sessions across 8 tenants ingest ≥ 10k frames
//!    through `FaultyTransport` (moderate profile: disconnects, corrupt
//!    prefixes, truncations, duplicates, reorders, stalls) while a quiet
//!    control tenant measures round-trip decision latency on the same
//!    server. A droop window then latches chip 0 of every chaos tenant;
//!    each latch must survive a disconnect + reconnect.
//! 3. **Restart drill** — `abort()` (the kill -9 simulation: no flush,
//!    no goodbye) + restart on the same checkpoint directory. Every
//!    session must greet back `resumed` with its alarm intact and the
//!    session factory must never run (zero refits).
//!
//! Soak numbers are load- and machine-dependent, so they are reported
//! *outside* the `benchmarks` array (the `parallel_scaling` convention);
//! the robustness properties are hard-asserted and the binary exits
//! non-zero if any fails.
//!
//! Env: `VOLTSENSE_FLEET_SESSIONS` (default 64), `VOLTSENSE_FLEET_FRAMES`
//! (default 10000), `VOLTSENSE_FLEET_SEED` (default 7),
//! `VOLTSENSE_BENCH_REPS` (samples per microbench min, default 5).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use voltsense::core::{CoreError, EmergencyMonitor, MonitorDecision, VoltageMapModel};
use voltsense::fleet::chaos::ChaosConfig;
use voltsense::fleet::checkpoint;
use voltsense::fleet::client::{FleetClient, RetryPolicy};
use voltsense::fleet::frame::{Frame, FrameDecoder, DEFAULT_MAX_FRAME};
use voltsense::fleet::server::{FleetConfig, FleetServer, SessionFactory};
use voltsense::fleet::session::{ChipMonitor, SessionKey};
use voltsense::linalg::Matrix;
use voltsense::telemetry::profile;
use voltsense::telemetry::slo::SloConfig;
use voltsense::telemetry::trace::{self, TraceConfig};
use voltsense::telemetry::{self, env};
use voltsense::workload::GaussianRng;
use voltsense_bench::{results_dir, rule};

// Route this binary's heap traffic through the counting allocator so the
// profiling overhead probe below measures the full production cost of
// the instrumentation: the disabled path (one relaxed load per alloc)
// is what every un-profiled run pays, and the probe gates it.
voltsense::telemetry::install_counting_allocator!();

const CONTROL_TENANT: u64 = 1000;
const LAGGY_TENANT: u64 = 9999;
const DROOP_CHIP: u64 = 0;

/// Identity monitor (prediction == reading): persistence 2, a 10 V
/// release margin so a latched alarm is effectively permanent.
fn identity_monitor() -> EmergencyMonitor {
    let model = VoltageMapModel::from_parts(
        vec![0],
        1,
        Matrix::from_rows(&[&[1.0]]).unwrap(),
        vec![0.0],
        0.001,
    )
    .unwrap();
    EmergencyMonitor::new(model, 0.8, 2, 10.0).unwrap()
}

/// Monitor with a deliberate 2 ms stall per observe. Every decision for
/// the laggy tenant overshoots the soak's 1 ms latency SLO, so both burn
/// windows read ~1000x budget and the fast-burn page is deterministic.
struct LaggyMonitor(EmergencyMonitor);

impl ChipMonitor for LaggyMonitor {
    fn observe(&mut self, readings: &[f64]) -> Result<MonitorDecision, CoreError> {
        std::thread::sleep(Duration::from_millis(2));
        self.0.observe(readings)
    }
    fn is_alarmed(&self) -> bool {
        self.0.is_alarmed()
    }
    fn checkpoint_json(&self, _key: SessionKey) -> Option<String> {
        None
    }
}

/// Factory that counts invocations — the restart drill's refit detector.
fn counting_factory(count: Arc<AtomicU64>) -> SessionFactory {
    Arc::new(move |key| {
        count.fetch_add(1, Ordering::SeqCst);
        if key.tenant == LAGGY_TENANT {
            return Ok(Box::new(LaggyMonitor(identity_monitor())) as Box<dyn ChipMonitor>);
        }
        Ok(Box::new(identity_monitor()) as Box<dyn ChipMonitor>)
    })
}

/// One timed sample: per-op cost in ns over `iters` inner iterations.
fn sample_ns(iters: usize, body: &mut impl FnMut()) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        body();
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx]
}

struct MicroBench {
    name: &'static str,
    min_ns: f64,
}

/// Phase 1: the stable, gated per-op costs.
///
/// Noise model: this runs on shared hardware where multi-hundred-ms CPU
/// steal bursts are routine, so a per-benchmark median can land entirely
/// inside one burst and read 1.5–2× slow. Instead the four bodies are
/// sampled **interleaved round-robin** (a burst is spread across all of
/// them, not concentrated on whichever ran during it) and each reports
/// its **minimum** sample — contention only ever adds time, so the min
/// is the reproducible uncontended cost the ±30% gate can hold.
fn microbenches(reps: usize) -> Vec<MicroBench> {
    let readings: Vec<f64> = (0..16).map(|i| 0.9 + 0.001 * i as f64).collect();
    // Traced v2 frame: the production encode path stamps a trace ID at
    // the edge, so the gated per-op cost must include the 8-byte field.
    let frame = Frame::Readings {
        chip: 3,
        seq: 42,
        trace: Some(trace::trace_id(7, 3, 42)),
        values: readings.clone(),
    };
    let bytes = frame.encode();

    // A fleet-shaped model (32 blocks x 8 sensors) warmed mid-stream, so
    // the checkpoint carries a realistic debounce/alarm state.
    let mut rng = GaussianRng::seed_from_u64(0xF1EE7);
    let coeffs = Matrix::from_vec(
        32,
        8,
        (0..32 * 8).map(|_| 0.125 * (0.5 + 0.5 * rng.uniform())).collect(),
    )
    .unwrap();
    let intercept: Vec<f64> = (0..32).map(|_| 0.05 * rng.uniform()).collect();
    let model = VoltageMapModel::from_parts((0..8).collect(), 12, coeffs, intercept, 0.004).unwrap();
    let mut monitor = EmergencyMonitor::new(model, 0.8, 2, 0.02).unwrap();
    let healthy: Vec<f64> = (0..8).map(|i| 0.95 + 0.002 * i as f64).collect();
    for _ in 0..24 {
        monitor.observe(&healthy).expect("arity matches");
    }
    let key = SessionKey { tenant: 7, chip: 11 };

    let mut encode = || {
        std::hint::black_box(frame.encode());
    };
    let mut decode = || {
        let mut decoder = FrameDecoder::new(DEFAULT_MAX_FRAME);
        decoder.push(&bytes);
        std::hint::black_box(decoder.next().expect("valid frame").expect("complete"));
    };
    // Checkpoint and observe share the monitor, so they run inside one
    // round-robin pass rather than as separate closures.
    const ENC_ITERS: usize = 16384;
    const DEC_ITERS: usize = 16384;
    const CKPT_ITERS: usize = 256;
    const OBS_ITERS: usize = 16384;

    // Warmup pass (first allocator touches, cache fill), then the rounds.
    sample_ns(ENC_ITERS, &mut encode);
    sample_ns(DEC_ITERS, &mut decode);
    let mut best = [f64::INFINITY; 4];
    for round in 0..=reps.max(1) {
        let enc = sample_ns(ENC_ITERS, &mut encode);
        let dec = sample_ns(DEC_ITERS, &mut decode);
        let ckpt = sample_ns(CKPT_ITERS, &mut || {
            let json = checkpoint::to_json(key, &monitor);
            std::hint::black_box(checkpoint::from_json(&json).expect("own output parses"));
        });
        let obs = sample_ns(OBS_ITERS, &mut || {
            std::hint::black_box(monitor.observe(&healthy).expect("arity matches"));
        });
        if round == 0 {
            continue; // warmup round for the monitor-backed bodies
        }
        for (slot, ns) in best.iter_mut().zip([enc, dec, ckpt, obs]) {
            if ns < *slot {
                *slot = ns;
            }
        }
    }

    let out = vec![
        MicroBench { name: "frame_encode", min_ns: best[0] },
        MicroBench { name: "frame_decode", min_ns: best[1] },
        MicroBench { name: "checkpoint_roundtrip", min_ns: best[2] },
        MicroBench { name: "monitor_observe", min_ns: best[3] },
    ];
    for b in &out {
        println!("bench fleet/{}: min {:.1} ns/op", b.name, b.min_ns);
    }
    out
}

struct SoakReport {
    seed: u64,
    tenants: usize,
    chips_per_tenant: usize,
    sessions: usize,
    frames_sent: u64,
    elapsed_s: f64,
    readings_per_sec: f64,
    lat_p50_ms: f64,
    lat_p99_ms: f64,
    lat_samples: usize,
    reconnects: u64,
    busys: u64,
    injected_faults: u64,
    shed: u64,
    rejected: u64,
    recoveries: u64,
    quarantined: u64,
    decode_errors: u64,
    checkpoints: u64,
    restart_resumed: usize,
    restart_refits: u64,
    restart_restores: u64,
    restart_alarms_held: usize,
    trace_recorded: u64,
    trace_deduped: u64,
    p99_exact_ns: f64,
    p99_hist_ns: f64,
    slo_pages: u64,
    slo_latency_burn_5m: f64,
    slo_availability_burn_5m: f64,
    traced_rps: f64,
    untraced_rps: f64,
    trace_overhead_pct: f64,
    profiled_rps: f64,
    unprofiled_rps: f64,
    profile_overhead_pct: f64,
}

/// Pipelined round-trip throughput against a quiet server: keep a small
/// window of readings in flight (well under the session queue, so no
/// shedding) and count decisions until `total` have landed. Ingest
/// wakeups make this work-bound, not tick-bound, so per-reading serving
/// cost — including the tracing instrumentation — is what it measures.
fn probe_rps(addr: std::net::SocketAddr, tenant: u64, total: u64) -> f64 {
    let mut client =
        FleetClient::new(addr, tenant, RetryPolicy::default(), ChaosConfig::quiet(tenant));
    client.hello(0).expect("probe handshake");
    let t0 = Instant::now();
    let mut sent = 0u64;
    let mut decided = 0u64;
    while decided < total {
        while sent < total && sent - decided < 16 {
            client.send_readings(0, sent, &[0.9]).expect("probe send");
            sent += 1;
        }
        for f in client.drain_responses(Duration::from_millis(1)) {
            if matches!(f, Frame::Decision { .. }) {
                decided += 1;
            }
        }
    }
    total as f64 / t0.elapsed().as_secs_f64()
}

#[allow(clippy::too_many_lines)]
fn main() {
    let reps = env::parse::<usize>("VOLTSENSE_BENCH_REPS").filter(|&r| r > 0).unwrap_or(5);
    let seed = env::parse::<u64>("VOLTSENSE_FLEET_SEED").unwrap_or(7);
    let sessions_req = env::parse::<usize>("VOLTSENSE_FLEET_SESSIONS").filter(|&s| s > 0).unwrap_or(64);
    let frames_req = env::parse::<u64>("VOLTSENSE_FLEET_FRAMES").filter(|&f| f > 0).unwrap_or(10_000);

    let tenants = sessions_req.min(8).max(1);
    let chips_per_tenant = (sessions_req / tenants).max(1);
    let sessions = tenants * chips_per_tenant;
    let rounds = (frames_req as usize).div_ceil(sessions).max(1);

    rule(72);
    println!("fleet_soak: {tenants} tenants x {chips_per_tenant} chips = {sessions} sessions");
    println!("  target {frames_req} frames ({rounds} rounds), seed {seed}, reps {reps}");
    rule(72);

    // The microbenches run un-instrumented (no recorder installed), so
    // their gated per-op costs stay comparable across commits.
    let benches = microbenches(reps);

    // Always-on observability from here on: flight recorder plus (under
    // VOLTSENSE_TELEMETRY_ADDR) the live endpoint the CI smoke scrapes
    // for /metrics, /trace, /slo, and /healthz while the soak runs.
    let obs = telemetry::init_always_on("fleet");

    // --- phase 2: the chaos soak --------------------------------------
    let ckpt_dir = std::env::temp_dir().join(format!("fleet_soak_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let cfg = FleetConfig {
        tick: Duration::from_millis(2),
        checkpoint_dir: Some(ckpt_dir.clone()),
        checkpoint_interval: 32,
        // Deep slowest-N tail so the p99 cross-check below can index ~1%
        // from the top of the control tenant's exact trace durations.
        trace: TraceConfig { slowest_per_tenant: 256, ..TraceConfig::default() },
        // A 1 ms decision-latency SLO: queue waits under chaos load sit
        // in the milliseconds, so the latency SLI burns far above the
        // 14.4 fast-burn line and the page fires deterministically.
        slo: SloConfig { latency_threshold_ns: 1_000_000, ..SloConfig::default() },
        ..FleetConfig::default()
    };
    let refits = Arc::new(AtomicU64::new(0));
    let mut server =
        FleetServer::start(cfg.clone(), counting_factory(refits.clone())).expect("bind soak server");
    // Route /trace, /slo, and /healthz to this server's buffers for the
    // lifetime of the process (the linger below keeps them scrapeable).
    server.install_observability();
    let addr = server.addr();

    let mut failures: Vec<String> = Vec::new();
    let soak_start = Instant::now();
    let finished = Arc::new(AtomicUsize::new(0));
    let handles: Vec<std::thread::JoinHandle<FleetClient>> = (0..tenants)
        .map(|t| {
            let tenant = t as u64 + 1;
            let finished = finished.clone();
            let chips = chips_per_tenant as u64;
            std::thread::spawn(move || {
                let mut client = FleetClient::new(
                    addr,
                    tenant,
                    RetryPolicy::default(),
                    ChaosConfig::moderate(seed ^ (tenant << 8)),
                );
                for chip in 0..chips {
                    client.hello(chip).expect("handshake retries through chaos");
                }
                let mut rng = GaussianRng::seed_from_u64(seed ^ tenant);
                for round in 0..rounds as u64 {
                    for chip in 0..chips {
                        // Healthy band: dips toward, never below, 0.8.
                        let v = 0.9 + 0.08 * rng.uniform();
                        client.send_readings(chip, round, &[v]).expect("send survives chaos");
                    }
                    let _ = client.drain_responses(Duration::ZERO);
                }
                finished.fetch_add(1, Ordering::SeqCst);
                client
            })
        })
        .collect();

    // Control tenant: quiet transport, synchronous round trips on the
    // same server — its decision latency is the serving-path p99 under
    // full chaos load. Keeps measuring until the chaos threads finish.
    let mut control = FleetClient::new(
        addr,
        CONTROL_TENANT,
        RetryPolicy::default(),
        ChaosConfig::quiet(seed),
    );
    control.hello(0).expect("control handshake");
    let mut latencies_ms: Vec<f64> = Vec::new();
    let mut control_rng = GaussianRng::seed_from_u64(seed ^ 0xC0117501);
    let mut seq = 0u64;
    loop {
        let v = 0.85 + 0.1 * control_rng.uniform();
        control.send_readings(0, seq, &[v]).expect("control send");
        let t0 = Instant::now();
        match control.wait_for(Duration::from_secs(10), |f| {
            matches!(f, Frame::Decision { seq: s, .. } if *s == seq)
        }) {
            Ok(_) => latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3),
            Err(e) => failures.push(format!("control decision for seq {seq} lost: {e:?}")),
        }
        seq += 1;
        let done = finished.load(Ordering::SeqCst) == tenants;
        if (seq >= 300 && done) || seq >= 20_000 {
            break;
        }
    }
    let mut clients: Vec<FleetClient> = handles
        .into_iter()
        .map(|h| h.join().expect("chaos sender thread must not panic"))
        .collect();
    let elapsed = soak_start.elapsed().as_secs_f64();

    // --- droop windows: latch chip 0 of every chaos tenant ------------
    for client in &mut clients {
        let tenant = client.tenant();
        let key = SessionKey { tenant, chip: DROOP_CHIP };
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut droop_seq = 1_000_000u64;
        while server.session_alarmed(key) != Some(true) {
            if Instant::now() >= deadline {
                failures.push(format!("tenant {tenant} droop chip never latched"));
                break;
            }
            client.send_readings(DROOP_CHIP, droop_seq, &[0.70]).expect("droop send");
            droop_seq += 1;
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    // Latched alarms must survive a disconnect + reconnect.
    for client in &mut clients {
        let tenant = client.tenant();
        client.disconnect();
        match client.hello(DROOP_CHIP) {
            Ok(hello) => {
                if !hello.resumed {
                    failures.push(format!("tenant {tenant} reconnect refit instead of resuming"));
                }
                if !hello.alarmed {
                    failures.push(format!("tenant {tenant} latched alarm lost across reconnect"));
                }
            }
            Err(e) => failures.push(format!("tenant {tenant} reconnect failed: {e:?}")),
        }
    }

    let frames_sent: u64 =
        clients.iter().map(|c| c.stats().sends).sum::<u64>() + control.stats().sends;
    let reconnects: u64 = clients.iter().map(|c| c.stats().reconnects).sum();
    let busys: u64 = clients.iter().map(|c| c.stats().busys).sum();
    let injected_faults: u64 = clients
        .iter()
        .map(|c| {
            let s = c.chaos_stats();
            s.disconnects + s.corruptions + s.truncations + s.duplicates + s.reorders + s.stalls
        })
        .sum();
    let stats = server.stats();
    if stats.quarantined != 0 {
        failures.push(format!("{} sessions quarantined under chaos (must be 0)", stats.quarantined));
    }
    if stats.sessions != sessions as u64 + 1 {
        failures.push(format!("expected {} live sessions, saw {}", sessions + 1, stats.sessions));
    }
    if injected_faults == 0 {
        failures.push("chaos schedule injected nothing — the soak was vacuous".into());
    }

    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let lat_p50 = percentile(&latencies_ms, 0.50);
    let lat_p99 = percentile(&latencies_ms, 0.99);
    println!(
        "soak: {frames_sent} frames in {elapsed:.2}s ({:.0} readings/s), \
         latency p50 {lat_p50:.2} ms p99 {lat_p99:.2} ms",
        frames_sent as f64 / elapsed
    );
    println!(
        "      shed {} rejected {} recoveries {} reconnects {reconnects} \
         busys {busys} faults {injected_faults} decode_errors {}",
        stats.shed, stats.rejected, stats.recoveries, stats.decode_errors
    );

    // --- injected latency: drive a deterministic fast-burn page -------
    let mut laggy = FleetClient::new(
        addr,
        LAGGY_TENANT,
        RetryPolicy::default(),
        ChaosConfig::quiet(seed ^ 0x1A6),
    );
    laggy.hello(0).expect("laggy handshake");
    for s in 0..8u64 {
        laggy.send_readings(0, s, &[0.9]).expect("laggy send");
        if let Err(e) = laggy.wait_for(Duration::from_secs(10), |f| {
            matches!(f, Frame::Decision { seq, .. } if *seq == s)
        }) {
            failures.push(format!("laggy decision for seq {s} lost: {e:?}"));
        }
    }

    // --- tracing / SLO acceptance -------------------------------------
    // The dispatch thread closes each trace after the response write, so
    // wait until the control tenant's flight histogram agrees with the
    // trace buffer's admitted count before comparing percentiles: both
    // views are then describing exactly the same population.
    let traces = server.traces();
    let slo = server.slo();
    let hist_name = format!("fleet.tenant.{CONTROL_TENANT}.reading_total_ns");
    let settle_deadline = Instant::now() + Duration::from_secs(2);
    let mut control_hist = None;
    loop {
        let snap = obs.flight().snapshot("fleet");
        let recorded = traces.stats(CONTROL_TENANT).recorded;
        match snap.histogram(&hist_name) {
            Some(h) if h.count == recorded && recorded > 0 => {
                control_hist = Some(h.clone());
                break;
            }
            _ if Instant::now() >= settle_deadline => break,
            _ => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    let trace_stats = traces.stats(CONTROL_TENANT);
    let slowest = traces.slowest(CONTROL_TENANT);
    match slowest.first() {
        Some(top) if top.total_ns() > 0 && top.stages.total() == top.total_ns() => {}
        Some(_) => failures.push("slowest control trace lacks a full stage breakdown".into()),
        None => failures.push("control tenant has no tail-sampled traces".into()),
    }
    if traces.sampled(CONTROL_TENANT).is_empty() {
        failures.push("control tenant's deterministic 1-in-k sample ring is empty".into());
    }

    // Satellite bugfix check: the histogram-derived p99 must agree with
    // the *exact* tail-sampled durations at the same rank. `slowest()` is
    // slowest-first, so rank r from the top lives at index r-1; allow ±1
    // rank for the two quantile conventions' off-by-one and ×1.05 for the
    // half-octave bucket-center resolution (8 sub-buckets per octave).
    let mut p99_exact_ns = 0.0;
    let mut p99_hist_ns = 0.0;
    match control_hist {
        Some(h) if !slowest.is_empty() => {
            let count = h.count;
            let target = ((0.99 * count as f64).ceil() as u64).clamp(1, count);
            let from_top = ((count - target + 1) as usize).min(slowest.len());
            let lo = from_top.saturating_sub(1).max(1);
            let hi = (from_top + 1).min(slowest.len());
            let agree = (lo..=hi).any(|rank| {
                let exact = slowest[rank - 1].total_ns() as f64;
                h.p99 <= exact * 1.05 && h.p99 >= exact / 1.05
            });
            p99_exact_ns = slowest[from_top - 1].total_ns() as f64;
            p99_hist_ns = h.p99;
            if !agree {
                failures.push(format!(
                    "histogram p99 {:.0} ns disagrees with exact tail ranks \
                     {lo}..={hi} (~{:.0} ns) beyond bucket resolution",
                    h.p99, p99_exact_ns
                ));
            }
        }
        _ => failures.push(format!(
            "control histogram never settled against the trace buffer \
             (histogram {:?}, recorded {})",
            control_hist.as_ref().map(|h| h.count),
            trace_stats.recorded
        )),
    }

    // Burn rates: the laggy tenant overshoots the 1 ms latency SLO on
    // every decision, so its burn must clear the fast-burn line and the
    // page must have fired.
    let slo_pages = slo.pages();
    if slo_pages == 0 {
        failures.push("no fast-burn page fired despite the laggy tenant's 2 ms stalls".into());
    }
    let laggy_burn = slo.burn(LAGGY_TENANT).unwrap_or_default();
    if !laggy_burn.fast_burn(slo.config().fast_burn) {
        failures.push(format!(
            "laggy tenant is not fast-burning: latency 5m {:.1} / 1h {:.1} \
             (threshold {:.1})",
            laggy_burn.latency_short,
            laggy_burn.latency_long,
            slo.config().fast_burn
        ));
    }
    let control_burn = slo.burn(CONTROL_TENANT).unwrap_or_default();
    let burning = slo.tenants().iter().any(|&t| {
        slo.burn(t)
            .is_some_and(|b| b.latency_short > 0.0 || b.availability_short > 0.0)
    });
    if !burning {
        failures.push("no tenant shows a non-zero burn rate under chaos".into());
    }
    println!(
        "slo: {slo_pages} fast-burn pages, control latency burn 5m {:.1} \
         (availability {:.1}); trace recorded {} deduped {}",
        control_burn.latency_short,
        control_burn.availability_short,
        trace_stats.recorded,
        trace_stats.deduped
    );

    // --- phase 3: kill -9 + restart from checkpoints ------------------
    // Give in-flight checkpoints a beat, then abort: no flush, no stop().
    std::thread::sleep(Duration::from_millis(50));
    server.abort();
    drop(clients);
    drop(control);

    let refits_after = Arc::new(AtomicU64::new(0));
    let mut server2 = FleetServer::start(cfg, counting_factory(refits_after.clone()))
        .expect("restarted server binds");
    let mut resumed = 0usize;
    let mut alarms_held = 0usize;
    for t in 0..tenants {
        let tenant = t as u64 + 1;
        let mut client = FleetClient::new(
            server2.addr(),
            tenant,
            RetryPolicy::default(),
            ChaosConfig::quiet(seed ^ tenant),
        );
        for chip in 0..chips_per_tenant as u64 {
            match client.hello(chip) {
                Ok(hello) => {
                    if hello.resumed {
                        resumed += 1;
                    } else {
                        failures
                            .push(format!("tenant {tenant} chip {chip} refit after restart"));
                    }
                    if chip == DROOP_CHIP {
                        if hello.alarmed {
                            alarms_held += 1;
                        } else {
                            failures.push(format!(
                                "tenant {tenant} droop alarm lost across kill -9 restart"
                            ));
                        }
                    }
                }
                Err(e) => failures.push(format!(
                    "tenant {tenant} chip {chip} hello after restart failed: {e:?}"
                )),
            }
        }
    }
    let restart_refits = refits_after.load(Ordering::SeqCst);
    if restart_refits != 0 {
        failures.push(format!("restart ran the factory {restart_refits} times (refit!)"));
    }
    let restart_restores = server2.stats().restores;
    println!(
        "restart: {resumed}/{sessions} sessions resumed from checkpoint, \
         {restart_refits} refits, {alarms_held}/{tenants} alarms held"
    );
    server2.stop();
    let _ = std::fs::remove_dir_all(&ckpt_dir);

    // --- tracing overhead probe ---------------------------------------
    // Alternate traced / untraced rounds against a quiet dedicated
    // server (fresh tenant each round so dedupe never interferes) and
    // keep the best throughput of each mode: contention only subtracts,
    // so the max is the reproducible uncontended rate. `set_enabled` is
    // the in-process equivalent of VOLTSENSE_TRACE=0 — it gates the
    // client's trace stamp and the server's span clocks at once.
    let probe_cfg =
        FleetConfig { tick: Duration::from_millis(1), ..FleetConfig::default() };
    let probe_refits = Arc::new(AtomicU64::new(0));
    let mut probe_server = FleetServer::start(probe_cfg, counting_factory(probe_refits))
        .expect("bind probe server");
    const PROBE_READINGS: u64 = 2_000;
    let mut traced_rps = 0.0f64;
    let mut untraced_rps = 0.0f64;
    for round in 0..3u64 {
        trace::set_enabled(true);
        traced_rps =
            traced_rps.max(probe_rps(probe_server.addr(), 2000 + round, PROBE_READINGS));
        trace::set_enabled(false);
        untraced_rps =
            untraced_rps.max(probe_rps(probe_server.addr(), 2100 + round, PROBE_READINGS));
    }
    trace::set_enabled(true);
    probe_server.stop();
    let trace_overhead_pct = (untraced_rps - traced_rps) / untraced_rps * 100.0;
    println!(
        "tracing overhead: traced {traced_rps:.0} rps vs untraced {untraced_rps:.0} rps \
         ({trace_overhead_pct:+.2}%, target <= 1%)"
    );
    // Hard gate at ±30% (shared-runner noise floor); the ≤1% target is
    // reported in the JSON so regressions show up in review, not flaps.
    if traced_rps < untraced_rps * 0.70 || untraced_rps < traced_rps * 0.70 {
        failures.push(format!(
            "tracing overhead outside ±30%: traced {traced_rps:.0} rps \
             vs untraced {untraced_rps:.0} rps"
        ));
    }

    // --- profiling overhead probe --------------------------------------
    // Same protocol as the tracing probe: alternate profiled (99 Hz
    // span-stack sampler + allocation accounting live) and unprofiled
    // rounds against a quiet dedicated server, keep the best of each
    // mode. The unprofiled rounds still run with the counting allocator
    // installed and span hooks compiled in — that disabled path (one
    // relaxed load per alloc / per span) is the always-on cost the ≤1%
    // budget covers.
    let probe_cfg =
        FleetConfig { tick: Duration::from_millis(1), ..FleetConfig::default() };
    let probe_refits = Arc::new(AtomicU64::new(0));
    let mut probe_server = FleetServer::start(probe_cfg, counting_factory(probe_refits))
        .expect("bind profile probe server");
    let mut profiled_rps = 0.0f64;
    let mut unprofiled_rps = 0.0f64;
    for round in 0..3u64 {
        {
            let _sampler = profile::start(profile::DEFAULT_HZ);
            let _counting = profile::enable_counting();
            profiled_rps =
                profiled_rps.max(probe_rps(probe_server.addr(), 2200 + round, PROBE_READINGS));
        }
        unprofiled_rps =
            unprofiled_rps.max(probe_rps(probe_server.addr(), 2300 + round, PROBE_READINGS));
    }
    probe_server.stop();
    // The probe's sampler replaced any env-started profiler in the global
    // registry; restore it so a lingering /profile scrape sees the soak's
    // own profile, not the probe's.
    if let Some(p) = obs.profiler() {
        profile::install(p.clone());
    }
    let profile_overhead_pct = (unprofiled_rps - profiled_rps) / unprofiled_rps * 100.0;
    println!(
        "profiling overhead: profiled {profiled_rps:.0} rps vs unprofiled {unprofiled_rps:.0} \
         rps ({profile_overhead_pct:+.2}%, target <= 1%)"
    );
    if profiled_rps < unprofiled_rps * 0.70 || unprofiled_rps < profiled_rps * 0.70 {
        failures.push(format!(
            "profiling overhead outside ±30%: profiled {profiled_rps:.0} rps \
             vs unprofiled {unprofiled_rps:.0} rps"
        ));
    }

    let report = SoakReport {
        seed,
        tenants,
        chips_per_tenant,
        sessions,
        frames_sent,
        elapsed_s: elapsed,
        readings_per_sec: frames_sent as f64 / elapsed,
        lat_p50_ms: lat_p50,
        lat_p99_ms: lat_p99,
        lat_samples: latencies_ms.len(),
        reconnects,
        busys,
        injected_faults,
        shed: stats.shed,
        rejected: stats.rejected,
        recoveries: stats.recoveries,
        quarantined: stats.quarantined,
        decode_errors: stats.decode_errors,
        checkpoints: stats.checkpoints,
        restart_resumed: resumed,
        restart_refits,
        restart_restores,
        restart_alarms_held: alarms_held,
        trace_recorded: trace_stats.recorded,
        trace_deduped: trace_stats.deduped,
        p99_exact_ns,
        p99_hist_ns,
        slo_pages,
        slo_latency_burn_5m: control_burn.latency_short,
        slo_availability_burn_5m: control_burn.availability_short,
        traced_rps,
        untraced_rps,
        trace_overhead_pct,
        profiled_rps,
        unprofiled_rps,
        profile_overhead_pct,
    };
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("bench_fleet.json");
    std::fs::write(&path, to_json(&benches, &report)).expect("write report");
    println!("wrote {}", path.display());

    // Under VOLTSENSE_TELEMETRY_LINGER the endpoint (and the soak
    // server's /trace + /slo views) stays scrapeable until the stop file
    // appears — the CI smoke validates the routes in this window.
    obs.linger_from_env();

    if !failures.is_empty() {
        eprintln!("fleet_soak FAILED {} robustness properties:", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!("all robustness properties held (seed {seed} replays this schedule)");
}

fn to_json(benches: &[MicroBench], r: &SoakReport) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"schema\": \"voltsense-metrics-v1\",\n");
    s.push_str("  \"suite\": \"fleet\",\n");
    // Soak numbers live OUTSIDE the benchmarks array on purpose: they
    // scale with machine load and chaos schedule, and would flap the
    // ±30% bench_compare gate without measuring a regression.
    s.push_str("  \"soak\": {\n");
    s.push_str(&format!("    \"seed\": {},\n", r.seed));
    s.push_str(&format!("    \"tenants\": {},\n", r.tenants));
    s.push_str(&format!("    \"chips_per_tenant\": {},\n", r.chips_per_tenant));
    s.push_str(&format!("    \"sessions\": {},\n", r.sessions));
    s.push_str(&format!("    \"frames_sent\": {},\n", r.frames_sent));
    s.push_str(&format!("    \"elapsed_s\": {:.3},\n", r.elapsed_s));
    s.push_str(&format!("    \"readings_per_sec\": {:.1},\n", r.readings_per_sec));
    s.push_str(&format!(
        "    \"latency_ms\": {{\"p50\": {:.3}, \"p99\": {:.3}, \"samples\": {}}},\n",
        r.lat_p50_ms, r.lat_p99_ms, r.lat_samples
    ));
    s.push_str(&format!(
        "    \"server\": {{\"shed\": {}, \"rejected\": {}, \"recoveries\": {}, \
         \"quarantined\": {}, \"decode_errors\": {}, \"checkpoints\": {}}},\n",
        r.shed, r.rejected, r.recoveries, r.quarantined, r.decode_errors, r.checkpoints
    ));
    s.push_str(&format!(
        "    \"clients\": {{\"reconnects\": {}, \"busys\": {}, \"injected_faults\": {}}},\n",
        r.reconnects, r.busys, r.injected_faults
    ));
    s.push_str(&format!(
        "    \"restart\": {{\"resumed\": {}, \"refits\": {}, \"restores\": {}, \
         \"alarms_held\": {}}},\n",
        r.restart_resumed, r.restart_refits, r.restart_restores, r.restart_alarms_held
    ));
    // Tracing/SLO numbers stay outside `benchmarks` for the same reason
    // as the soak stats: rps and burn rates scale with machine load.
    s.push_str(&format!(
        "    \"tracing\": {{\"recorded\": {}, \"deduped\": {}, \"p99_exact_ns\": {:.0}, \
         \"p99_hist_ns\": {:.0}, \"traced_rps\": {:.1}, \"untraced_rps\": {:.1}, \
         \"overhead_pct\": {:.2}}},\n",
        r.trace_recorded,
        r.trace_deduped,
        r.p99_exact_ns,
        r.p99_hist_ns,
        r.traced_rps,
        r.untraced_rps,
        r.trace_overhead_pct
    ));
    s.push_str(&format!(
        "    \"profiling\": {{\"profiled_rps\": {:.1}, \"unprofiled_rps\": {:.1}, \
         \"overhead_pct\": {:.2}}},\n",
        r.profiled_rps, r.unprofiled_rps, r.profile_overhead_pct
    ));
    s.push_str(&format!(
        "    \"slo\": {{\"pages\": {}, \"latency_burn_5m\": {:.3}, \
         \"availability_burn_5m\": {:.3}}}\n",
        r.slo_pages, r.slo_latency_burn_5m, r.slo_availability_burn_5m
    ));
    s.push_str("  },\n");
    s.push_str("  \"benchmarks\": [\n");
    for (i, b) in benches.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"value\": {:.1}, \"unit\": \"ns\", \"min_ns\": {:.1}}}",
            b.name, b.min_ns, b.min_ns
        ));
        s.push_str(if i + 1 < benches.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}
