//! Ablation — is the OLS refit (paper Eq. 17–20) actually necessary, or
//! could one predict straight from the group-lasso coefficients (Eq. 14)?
//!
//! The paper argues (two-candidate example, Eq. 15–16) that the GL
//! coefficients are biased by the budget constraint. This experiment
//! quantifies it: same selected sensors, two prediction rules.
//!
//! Run with: `cargo run --release -p voltsense-bench --bin ablation_refit`

use voltsense::core::{metrics, GlDirectModel, SelectionProblem, VoltageMapModel};
use voltsense::grouplasso::GlOptions;
use voltsense::linalg::Matrix;
use voltsense_bench::{rule, Experiment};

fn main() {
    let _telemetry = voltsense::telemetry::init_from_env("ablation_refit");
    let exp = Experiment::from_env();
    // Build the covariance form once; reuse it for every budget.
    let prepared = SelectionProblem::new(&exp.train.x, &exp.train.f).expect("prepared problem");

    println!(
        "{:>8} {:>9} {:>16} {:>16} {:>9}",
        "lambda", "sensors", "refit rel err", "direct rel err", "ratio"
    );
    rule(64);
    for lambda in [5.0, 10.0, 20.0, 40.0] {
        let selection = match prepared.select_constrained(lambda, 1e-3, &GlOptions::default()) {
            Ok(s) => s,
            Err(e) => {
                println!("{lambda:>8} selection failed: {e}");
                continue;
            }
        };
        let q = selection.num_selected();

        // Rule A: the paper's OLS refit.
        let refit = VoltageMapModel::fit(&exp.train.x, &exp.train.f, &selection.selected)
            .expect("refit");
        let refit_pred = refit.predict_matrix(&exp.test.x).expect("predict");
        let refit_err = metrics::relative_error(&refit_pred, &exp.test.f).expect("metric");

        // Rule B: direct GL coefficients (Eq. 14).
        let direct = GlDirectModel::from_selection(selection);
        let mut direct_pred = Matrix::zeros(exp.test.f.rows(), exp.test.f.cols());
        for s in 0..exp.test.x.cols() {
            let sample = exp.test.x.col(s);
            let pred = direct.predict_from_candidates(&sample).expect("predict");
            direct_pred.set_col(s, &pred);
        }
        let direct_err = metrics::relative_error(&direct_pred, &exp.test.f).expect("metric");

        println!(
            "{lambda:>8} {q:>9} {refit_err:>16.4e} {direct_err:>16.4e} {:>9.1}x",
            direct_err / refit_err.max(1e-300)
        );
    }
    rule(64);
    println!(
        "\npaper shape: the constrained GL coefficients are biased, so the\n\
         direct rule (Eq. 14) is markedly worse at every budget — the OLS\n\
         refit is what makes the prediction model accurate. The ratio even\n\
         grows with λ: the refit converts extra sensors into accuracy while\n\
         the shrunken GL coefficients cannot."
    );
}
