//! Fig. 2 — predicted vs. real voltage trace at one noise-critical node,
//! with 2 and with 7 selected sensors per core.
//!
//! Paper shape: even the 2-sensor model tracks the real trace closely;
//! the 7-sensor model is visibly tighter.
//!
//! Run with: `cargo run --release -p voltsense-bench --bin fig2_voltage_trace`

use voltsense::core::MethodologyConfig;
use voltsense::scenario::PerCoreModel;
use voltsense_bench::{rule, sparkline, Experiment};

fn main() {
    let _telemetry = voltsense::telemetry::init_from_env("fig2_voltage_trace");
    let exp = Experiment::from_env();
    let config = MethodologyConfig::default();

    // Two models: 2 and 7 sensors per core (the paper's comparison).
    let model2 = PerCoreModel::fit_with_sensor_count(&exp.train, &exp.partition, 2, &config)
        .expect("fit q=2");
    let model7 = PerCoreModel::fit_with_sensor_count(&exp.train, &exp.partition, 7, &config)
        .expect("fit q=7");
    println!(
        "models: {} and {} total sensors",
        model2.total_sensors(),
        model7.total_sensors()
    );

    // A contiguous step-by-step window of benchmark BM1 (sample_every = 1).
    let window = 320;
    let maps = exp
        .scenario
        .simulate_trace_window(0, window)
        .expect("trace window");
    let lattice = exp.scenario.chip().lattice();
    let x = maps.candidate_matrix(lattice);
    let f = maps.critical_matrix(&exp.data.critical_nodes);

    // Pick the critical node with the deepest droop in the window.
    let block = (0..f.rows())
        .min_by(|&a, &b| {
            let ma = f.row(a).iter().copied().fold(f64::INFINITY, f64::min);
            let mb = f.row(b).iter().copied().fold(f64::INFINITY, f64::min);
            ma.partial_cmp(&mb).expect("finite")
        })
        .expect("blocks exist");
    println!(
        "critical node of block {} ({}), {} timesteps @ {} ns\n",
        block,
        exp.scenario.chip().blocks()[block].kind(),
        window,
        maps.dt_ns()
    );

    let pred2 = model2.predict_matrix(&x).expect("predict q=2");
    let pred7 = model7.predict_matrix(&x).expect("predict q=7");

    let real: Vec<f64> = f.row(block).to_vec();
    let p2: Vec<f64> = pred2.row(block).to_vec();
    let p7: Vec<f64> = pred7.row(block).to_vec();

    println!("real     {}", sparkline(&real));
    println!("2/core   {}", sparkline(&p2));
    println!("7/core   {}", sparkline(&p7));
    println!();

    // Numeric excerpt (every 20th step).
    println!(
        "{:>8}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}",
        "t (ns)", "real (V)", "2/core", "err (mV)", "7/core", "err (mV)"
    );
    rule(62);
    for s in (0..window).step_by(20) {
        println!(
            "{:>8.0}  {:>9.4}  {:>9.4}  {:>9.3}  {:>9.4}  {:>9.3}",
            maps.sample_steps()[s] as f64 * maps.dt_ns(),
            real[s],
            p2[s],
            (p2[s] - real[s]).abs() * 1e3,
            p7[s],
            (p7[s] - real[s]).abs() * 1e3,
        );
    }
    rule(62);

    let rms = |p: &[f64]| {
        (p.iter()
            .zip(&real)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / real.len() as f64)
            .sqrt()
    };
    println!(
        "window RMS error: 2/core {:.3} mV, 7/core {:.3} mV  (paper shape: \
         7-sensor error < 2-sensor error, both small)",
        rms(&p2) * 1e3,
        rms(&p7) * 1e3
    );
}
