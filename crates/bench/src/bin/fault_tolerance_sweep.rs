//! Fault-tolerance sweep — detection accuracy (ME/WAE/TE) versus the
//! number and kind of failed sensors, for three runtimes sharing one
//! sensor budget:
//!
//! * **fault-aware** — the proposed model wrapped in the fault-tolerant
//!   [`EmergencyMonitor`] (plausibility gating, cross-prediction health
//!   scoring, leave-k-out fallback hot-swap);
//! * **naive** — the same model with no fault layer (non-finite readings
//!   are rejected, which silently drops those samples' alarms);
//! * **eagle-eye** — the threshold baseline alarming directly on its own
//!   placed sensors' readings.
//!
//! Each trial corrupts the first `n` sensors of each system's *own*
//! placed list with one fault kind from `voltsense::faults`, injected a
//! short way into the held-out trace. Faults are seeded and replay
//! bit-identically; the binary checks that before reporting.
//!
//! Expected shape: with one stuck sensor the fault-aware monitor stays
//! within ~2x of its fault-free total error while the naive monitor and
//! Eagle-Eye blow up (a low stuck value pins their alarm on, a NaN pins
//! it off).
//!
//! Run with: `cargo run --release -p voltsense-bench --bin fault_tolerance_sweep`
//! (env: `VOLTSENSE_SCALE=small` for the smoke configuration).

use voltsense::core::{detection, EmergencyMonitor, FaultPolicy, Methodology, MethodologyConfig};
use voltsense::eagleeye::{EagleEyeConfig, EagleEyePlacement};
use voltsense::faults::{FaultEvent, FaultInjector, FaultKind, FaultSchedule};
use voltsense::linalg::Matrix;
use voltsense_bench::{fmt_rate, results_dir, rule, Experiment, Scale};

/// Seed for every injector: replay of this sweep is bit-identical.
const FAULT_SEED: u64 = 0xFA57_F00D;

/// ME/WAE/TE triple for one system in one trial.
#[derive(Clone, Copy)]
struct Rates {
    me: f64,
    wae: f64,
    te: f64,
}

impl From<detection::DetectionOutcome> for Rates {
    fn from(o: detection::DetectionOutcome) -> Rates {
        Rates {
            me: o.miss_rate,
            wae: o.wrong_alarm_rate,
            te: o.total_error_rate,
        }
    }
}

/// One sweep row: a fault kind applied to the first `failed` sensors.
struct Trial {
    fault: &'static str,
    failed: usize,
    aware: Rates,
    naive: Rates,
    eagle: Rates,
    /// Sensors the fault-aware monitor permanently failed, and samples it
    /// gated — its own view of the damage.
    sensors_failed: u64,
    gated_readings: u64,
}

/// The placed sensors' readings at sample `s` of the candidate matrix.
fn readings_at(x: &Matrix, sensors: &[usize], s: usize) -> Vec<f64> {
    sensors.iter().map(|&m| x[(m, s)]).collect()
}

/// Corrupts the whole trace for one placed list: returns one reading
/// vector per sample.
fn corrupted_trace(
    x: &Matrix,
    sensors: &[usize],
    schedule: &FaultSchedule,
    seed: u64,
) -> Vec<Vec<f64>> {
    let mut injector =
        FaultInjector::new(schedule.clone(), sensors.len(), seed).expect("valid schedule");
    (0..x.cols())
        .map(|s| {
            injector
                .corrupt(&readings_at(x, sensors, s))
                .expect("reading count matches schedule")
        })
        .collect()
}

/// A schedule failing sensors `0..n` of a placed list with `kind`, the
/// first at `onset` and each further failure `stagger` samples later —
/// sensors die one after another, as deployed hardware does. (Signature
/// attribution identifies one culprit at a time; two sensors failing on
/// the *same* sample is outside the fault model, and the staggered sweep
/// is what "degradation versus number of failed sensors" means.)
fn first_n_schedule(n: usize, onset: u64, stagger: u64, kind: FaultKind) -> FaultSchedule {
    let events: Vec<FaultEvent> = (0..n)
        .map(|i| FaultEvent::new(i, onset + i as u64 * stagger, kind))
        .collect();
    FaultSchedule::new(events).expect("valid fault events")
}

/// Runs one corrupted trace through a fresh monitor; an errored sample
/// (rejected reading, degraded beyond recovery) contributes no alarm.
fn monitor_alarms(monitor: &mut EmergencyMonitor, trace: &[Vec<f64>]) -> Vec<bool> {
    trace
        .iter()
        .map(|r| monitor.observe(r).map(|d| d.alarm).unwrap_or(false))
        .collect()
}

fn main() {
    let _telemetry = voltsense::telemetry::init_from_env("fault_tolerance_sweep");
    let scale = Scale::from_env();
    let exp = Experiment::from_env();
    let config = MethodologyConfig::default();
    let threshold = config.emergency_threshold;
    let q_target = match scale {
        Scale::Paper => 8,
        Scale::Small => 4,
    };

    let fitted = Methodology::fit_with_sensor_count(&exp.train.x, &exp.train.f, q_target, &config)
        .expect("proposed fit");
    let sensors = fitted.sensors().to_vec();
    let q = sensors.len();
    let ft_model = fitted
        .fault_tolerant_model(&exp.train.x, &exp.train.f)
        .expect("fault-tolerant refit");
    let eagle = EagleEyePlacement::place(&exp.train.x, &exp.train.f, q, &EagleEyeConfig::default())
        .expect("eagle-eye placement");
    let eagle_sensors = eagle.selected().to_vec();

    let truth = detection::ground_truth(&exp.test.f, threshold);
    let n_samples = exp.test.num_samples();
    let onset = (n_samples as u64 / 4).min(16);
    let stagger = (n_samples as u64 / 8).max(1);
    println!(
        "budget: {q} sensors, {n_samples} held-out samples, faults from sample {onset} \
         (staggered every {stagger})\n"
    );

    // Replay check: the corrupted stream must be bit-identical across
    // re-runs from the same seed (AdditiveNoise is the stochastic kind).
    let noisy = FaultKind::AdditiveNoise { sigma: 0.05 };
    let replay_schedule = first_n_schedule(q.min(2), onset, stagger, noisy);
    let run_a = corrupted_trace(&exp.test.x, &sensors, &replay_schedule, FAULT_SEED);
    let run_b = corrupted_trace(&exp.test.x, &sensors, &replay_schedule, FAULT_SEED);
    let replay_identical = run_a
        .iter()
        .zip(&run_b)
        .all(|(a, b)| {
            a.iter()
                .zip(b)
                .all(|(x, y)| x.to_bits() == y.to_bits())
        });
    assert!(replay_identical, "fault injection must replay bit-identically");

    let fresh_aware = || {
        EmergencyMonitor::fault_tolerant(ft_model.clone(), threshold, 1, 0.0, FaultPolicy::default())
            .expect("monitor config")
    };
    let fresh_naive = || {
        EmergencyMonitor::new(fitted.model().clone(), threshold, 1, 0.0).expect("monitor config")
    };

    let run_trial = |name: &'static str, n: usize, kind: Option<FaultKind>| -> Trial {
        let schedule = match kind {
            Some(k) => first_n_schedule(n, onset, stagger, k),
            None => FaultSchedule::healthy(),
        };
        let own = corrupted_trace(&exp.test.x, &sensors, &schedule, FAULT_SEED);
        let eagle_own = corrupted_trace(&exp.test.x, &eagle_sensors, &schedule, FAULT_SEED);

        let mut aware = fresh_aware();
        let aware_alarms = monitor_alarms(&mut aware, &own);
        let mut naive = fresh_naive();
        let naive_alarms = monitor_alarms(&mut naive, &own);
        let eagle_alarms: Vec<bool> = eagle_own
            .iter()
            .map(|r| eagle.detect_readings(r).expect("reading count"))
            .collect();

        Trial {
            fault: name,
            failed: n,
            aware: detection::evaluate(&truth, &aware_alarms).expect("evaluate").into(),
            naive: detection::evaluate(&truth, &naive_alarms).expect("evaluate").into(),
            eagle: detection::evaluate(&truth, &eagle_alarms).expect("evaluate").into(),
            sensors_failed: aware.stats().sensors_failed,
            gated_readings: aware.stats().gated_readings,
        }
    };

    let fault_free = run_trial("none", 0, None);

    let kinds: [(&'static str, FaultKind); 5] = [
        ("stuck_at", FaultKind::StuckAt { value: 0.80 }),
        ("open_nan", FaultKind::OpenNaN),
        ("gain_error", FaultKind::GainError { gain: 0.90 }),
        ("offset_drift", FaultKind::OffsetDrift { rate_per_sample: -1e-3 }),
        ("additive_noise", noisy),
    ];
    let max_failed = q.saturating_sub(1).min(3);

    println!(
        "{:<15} {:>2}  {:>24}  {:>24}  {:>24}",
        "", "", "fault-aware", "naive", "eagle-eye"
    );
    println!(
        "{:<15} {:>2}  {:>7} {:>8} {:>7}  {:>7} {:>8} {:>7}  {:>7} {:>8} {:>7}",
        "fault", "n", "ME", "WAE", "TE", "ME", "WAE", "TE", "ME", "WAE", "TE"
    );
    rule(100);
    let print_trial = |t: &Trial| {
        println!(
            "{:<15} {:>2}  {:>7} {:>8} {:>7}  {:>7} {:>8} {:>7}  {:>7} {:>8} {:>7}",
            t.fault,
            t.failed,
            fmt_rate(t.aware.me),
            fmt_rate(t.aware.wae),
            fmt_rate(t.aware.te),
            fmt_rate(t.naive.me),
            fmt_rate(t.naive.wae),
            fmt_rate(t.naive.te),
            fmt_rate(t.eagle.me),
            fmt_rate(t.eagle.wae),
            fmt_rate(t.eagle.te),
        );
    };
    print_trial(&fault_free);

    let mut trials = Vec::new();
    for &(name, kind) in &kinds {
        for n in 1..=max_failed {
            let t = run_trial(name, n, Some(kind));
            print_trial(&t);
            trials.push(t);
        }
    }
    rule(100);

    // Headline: one stuck sensor should degrade the fault-aware monitor
    // gracefully while the baselines blow up.
    let stuck_1 = trials
        .iter()
        .find(|t| t.fault == "stuck_at" && t.failed == 1)
        .expect("stuck_at n=1 trial");
    let graceful_bound = (2.0 * fault_free.aware.te).max(0.02);
    let graceful = stuck_1.aware.te <= graceful_bound;
    println!(
        "\n1 stuck sensor: fault-aware TE {} (fault-free {}, bound {}), \
         naive TE {}, eagle-eye TE {} — graceful degradation: {}",
        fmt_rate(stuck_1.aware.te),
        fmt_rate(fault_free.aware.te),
        fmt_rate(graceful_bound),
        fmt_rate(stuck_1.naive.te),
        fmt_rate(stuck_1.eagle.te),
        if graceful { "yes" } else { "NO" }
    );

    let json = to_json(
        scale,
        q,
        n_samples,
        onset,
        replay_identical,
        graceful,
        &fault_free,
        &trials,
    );
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("bench_fault_tolerance.json");
    std::fs::write(&path, json).expect("write results");
    println!("wrote {}", path.display());
}

fn rates_json(r: &Rates) -> String {
    format!(
        "{{\"me\": {}, \"wae\": {}, \"te\": {}}}",
        r.me, r.wae, r.te
    )
}

fn trial_json(t: &Trial) -> String {
    format!(
        "    {{\"fault\": \"{}\", \"failed_sensors\": {}, \"fault_aware\": {}, \
         \"naive\": {}, \"eagle_eye\": {}, \"monitor_failed\": {}, \"monitor_gated\": {}}}",
        t.fault,
        t.failed,
        rates_json(&t.aware),
        rates_json(&t.naive),
        rates_json(&t.eagle),
        t.sensors_failed,
        t.gated_readings,
    )
}

#[allow(clippy::too_many_arguments)]
fn to_json(
    scale: Scale,
    q: usize,
    n_samples: usize,
    onset: u64,
    replay_identical: bool,
    graceful: bool,
    fault_free: &Trial,
    trials: &[Trial],
) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"suite\": \"fault_tolerance\",\n");
    s.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        if scale == Scale::Paper { "paper" } else { "small" }
    ));
    s.push_str(&format!("  \"sensors\": {q},\n"));
    s.push_str(&format!("  \"test_samples\": {n_samples},\n"));
    s.push_str(&format!("  \"fault_onset\": {onset},\n"));
    s.push_str(&format!("  \"fault_seed\": {FAULT_SEED},\n"));
    s.push_str(&format!("  \"replay_identical\": {replay_identical},\n"));
    s.push_str(&format!("  \"graceful_degradation\": {graceful},\n"));
    s.push_str(&format!(
        "  \"fault_free\": {{\"fault_aware\": {}, \"naive\": {}, \"eagle_eye\": {}}},\n",
        rates_json(&fault_free.aware),
        rates_json(&fault_free.naive),
        rates_json(&fault_free.eagle),
    ));
    s.push_str("  \"trials\": [\n");
    for (i, t) in trials.iter().enumerate() {
        s.push_str(&trial_json(t));
        s.push_str(if i + 1 < trials.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}
