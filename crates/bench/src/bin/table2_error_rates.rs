//! Table 2 — ME/WAE/TE per benchmark with 2 sensors per core, Eagle-Eye
//! vs. the proposed approach.
//!
//! Paper shape: the proposed approach roughly halves ME and TE on every
//! benchmark; WAE is below ~1e-3 for both and does not dominate.
//!
//! Run with: `cargo run --release -p voltsense-bench --bin table2_error_rates`

use voltsense::core::{detection, MethodologyConfig};
use voltsense::eagleeye::{EagleEyeConfig, EagleEyePlacement};
use voltsense::scenario::PerCoreModel;
use voltsense_bench::{fmt_rate, rule, Experiment, NUM_BENCHMARKS};

fn main() {
    // Always-on flight recorder (the production posture; also serves
    // VOLTSENSE_TELEMETRY exports and VOLTSENSE_TELEMETRY_ADDR scrapes).
    // VOLTSENSE_FLIGHT=0 opts out — that is the baseline the ≤1%
    // always-on overhead bound is measured against.
    let flight_off = voltsense::telemetry::env::value("VOLTSENSE_FLIGHT")
        .is_some_and(|v| voltsense::telemetry::env::is_falsy(&v));
    let _telemetry = if flight_off {
        None
    } else {
        Some(voltsense::telemetry::init_always_on("table2_error_rates"))
    };
    let exp = Experiment::from_env();
    let config = MethodologyConfig::default();
    let threshold = config.emergency_threshold;

    // Proposed: 2 sensors per core. Eagle-Eye: the same total budget.
    let proposed = PerCoreModel::fit_with_sensor_count(&exp.train, &exp.partition, 2, &config)
        .expect("proposed fit");
    let q_total = proposed.total_sensors();
    let eagle = EagleEyePlacement::place(&exp.train.x, &exp.train.f, q_total, &EagleEyeConfig::default())
        .expect("eagle-eye placement");
    println!(
        "budget: {} sensors total ({} cores x ~2)\n",
        q_total,
        exp.partition.num_cores()
    );

    println!(
        "{:<6} {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}   {:>6}",
        "", "Eagle-Eye", "", "", "Proposed", "", "", ""
    );
    println!(
        "{:<6} {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}   {:>6}",
        "BM", "ME", "WAE", "TE", "ME", "WAE", "TE", "#emerg"
    );
    rule(78);

    let mut wins = 0;
    let mut comparable = 0;
    let mut rows = Vec::new();
    for bm in 0..NUM_BENCHMARKS {
        let sub = exp.test.benchmark_subset(bm);
        if sub.num_samples() == 0 {
            continue;
        }
        let truth = detection::ground_truth(&sub.f, threshold);
        let e_alarms = eagle.detect_matrix(&sub.x).expect("eagle detect");
        let p_alarms = proposed.detect_matrix(&sub.x).expect("proposed detect");
        let e = detection::evaluate(&truth, &e_alarms).expect("evaluate");
        let p = detection::evaluate(&truth, &p_alarms).expect("evaluate");
        println!(
            "BM{:<4} {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}   {:>6}",
            bm + 1,
            fmt_rate(e.miss_rate),
            fmt_rate(e.wrong_alarm_rate),
            fmt_rate(e.total_error_rate),
            fmt_rate(p.miss_rate),
            fmt_rate(p.wrong_alarm_rate),
            fmt_rate(p.total_error_rate),
            e.emergencies,
        );
        if e.emergencies > 0 {
            comparable += 1;
            if p.total_error_rate <= e.total_error_rate {
                wins += 1;
            }
        }
        rows.push((e, p));
    }
    rule(78);

    // Aggregates over all benchmarks with emergencies.
    let agg = |sel: fn(&detection::DetectionOutcome) -> f64, which: usize| {
        let vals: Vec<f64> = rows
            .iter()
            .filter(|(e, _)| e.emergencies > 0)
            .map(|(e, p)| if which == 0 { sel(e) } else { sel(p) })
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    let me_e = agg(|o| o.miss_rate, 0);
    let me_p = agg(|o| o.miss_rate, 1);
    let te_e = agg(|o| o.total_error_rate, 0);
    let te_p = agg(|o| o.total_error_rate, 1);
    println!(
        "mean   {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
        fmt_rate(me_e),
        fmt_rate(agg(|o| o.wrong_alarm_rate, 0)),
        fmt_rate(te_e),
        fmt_rate(me_p),
        fmt_rate(agg(|o| o.wrong_alarm_rate, 1)),
        fmt_rate(te_p),
    );
    println!(
        "\nproposed TE <= eagle-eye TE on {wins}/{comparable} emergency-bearing \
         benchmarks; mean ME ratio {:.2}, mean TE ratio {:.2}\n\
         (paper shape: proposed ME and TE about half of Eagle-Eye's)",
        me_p / me_e.max(1e-12),
        te_p / te_e.max(1e-12)
    );

    // Under VOLTSENSE_TELEMETRY_LINGER the endpoint stays scrapeable until
    // the stop file appears — the CI profiling smoke scrapes /profile in
    // this window (the sampler keeps running, so the profile is final-ish
    // but still live).
    if let Some(obs) = &_telemetry {
        obs.linger_from_env();
    }
}
