//! CI incident-snapshot validator.
//!
//! Usage: `validate_incident [flags] <incident.json>...`
//!
//! Validates every file as a `voltsense-incident-v1` document with the
//! in-tree JSON parser: the schema marker; a non-empty `kind`; `fields`
//! as a numeric object; `failed_sensors` / `gated_sensors` as integer
//! arrays; a `sampling` array of `{name, seen, kept, stride}` records; a
//! `ring` array whose entries carry `seq`/`name`/`at_ns`/`fields`; and an
//! embedded `metrics` object with the `voltsense-metrics-v1` marker.
//!
//! Cross-file expectations (what the CI smoke promises):
//!
//! * `--expect-kind <kind>` — at least one file has this kind (repeatable);
//! * `--expect-ring-event <name>` — some file's ring contains the event;
//! * `--expect-attribution` — some file names at least one failed sensor.

use std::process::ExitCode;

use voltsense::telemetry::json::{self, Value};

fn fail(msg: &str) -> ExitCode {
    eprintln!("incident validation FAILED: {msg}");
    ExitCode::FAILURE
}

/// Per-file structural check; returns `(kind, ring event names, failed sensor count)`.
fn validate_file(path: &str) -> Result<(String, Vec<String>, usize), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    if doc.get("schema").and_then(Value::as_str) != Some("voltsense-incident-v1") {
        return Err(format!("{path}: missing or wrong \"schema\" marker"));
    }
    let kind = doc
        .get("kind")
        .and_then(Value::as_str)
        .filter(|k| !k.is_empty())
        .ok_or_else(|| format!("{path}: missing \"kind\""))?;
    for key in ["seq", "at_unix_ms"] {
        if doc.get(key).and_then(Value::as_f64).is_none() {
            return Err(format!("{path}: missing numeric \"{key}\""));
        }
    }
    let Some(Value::Object(fields)) = doc.get("fields") else {
        return Err(format!("{path}: \"fields\" is not an object"));
    };
    if fields.values().any(|v| !matches!(v, Value::Number(_) | Value::Null)) {
        return Err(format!("{path}: non-numeric incident field"));
    }

    let mut failed_sensors = 0;
    for key in ["failed_sensors", "gated_sensors"] {
        let arr = doc
            .get(key)
            .and_then(Value::as_array)
            .ok_or_else(|| format!("{path}: \"{key}\" is not an array"))?;
        if arr.iter().any(|v| v.as_f64().is_none_or(|n| n < 0.0 || n.fract() != 0.0)) {
            return Err(format!("{path}: \"{key}\" holds a non-index value"));
        }
        if key == "failed_sensors" {
            failed_sensors = arr.len();
        }
    }

    let sampling = doc
        .get("sampling")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{path}: no \"sampling\" array"))?;
    for s in sampling {
        if s.get("name").and_then(Value::as_str).is_none()
            || ["seen", "kept", "stride"]
                .iter()
                .any(|k| s.get(k).and_then(Value::as_f64).is_none())
        {
            return Err(format!("{path}: malformed sampling record"));
        }
    }

    let ring = doc
        .get("ring")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{path}: no \"ring\" array"))?;
    let mut ring_names = Vec::with_capacity(ring.len());
    for e in ring {
        let name = e
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{path}: ring event without a name"))?;
        if e.get("seq").and_then(Value::as_f64).is_none()
            || e.get("at_ns").and_then(Value::as_f64).is_none()
            || !matches!(e.get("fields"), Some(Value::Object(_)))
        {
            return Err(format!("{path}: malformed ring event {name:?}"));
        }
        ring_names.push(name.to_string());
    }

    if doc
        .get("metrics")
        .and_then(|m| m.get("schema"))
        .and_then(Value::as_str)
        != Some("voltsense-metrics-v1")
    {
        return Err(format!("{path}: embedded \"metrics\" snapshot missing its schema marker"));
    }

    Ok((kind.to_string(), ring_names, failed_sensors))
}

fn main() -> ExitCode {
    let mut expect_kinds: Vec<String> = Vec::new();
    let mut expect_ring_events: Vec<String> = Vec::new();
    let mut expect_attribution = false;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--expect-kind" => match args.next() {
                Some(k) => expect_kinds.push(k),
                None => return fail("--expect-kind needs a value"),
            },
            "--expect-ring-event" => match args.next() {
                Some(n) => expect_ring_events.push(n),
                None => return fail("--expect-ring-event needs a value"),
            },
            "--expect-attribution" => expect_attribution = true,
            _ => paths.push(arg),
        }
    }
    if paths.is_empty() {
        return fail("usage: validate_incident [flags] <incident.json>...");
    }

    let mut seen_kinds: Vec<String> = Vec::new();
    let mut seen_ring_events: Vec<String> = Vec::new();
    let mut attributed_files = 0usize;
    let mut total_ring_events = 0usize;
    for path in &paths {
        match validate_file(path) {
            Ok((kind, ring_names, failed)) => {
                println!(
                    "  {path}: kind={kind}, {} ring events, {} failed sensor(s)",
                    ring_names.len(),
                    failed
                );
                total_ring_events += ring_names.len();
                seen_kinds.push(kind);
                seen_ring_events.extend(ring_names);
                if failed > 0 {
                    attributed_files += 1;
                }
            }
            Err(e) => return fail(&e),
        }
    }

    for kind in &expect_kinds {
        if !seen_kinds.iter().any(|k| k == kind) {
            return fail(&format!(
                "no incident of kind {kind:?} among {} file(s) (saw: {seen_kinds:?})",
                paths.len()
            ));
        }
    }
    for name in &expect_ring_events {
        if !seen_ring_events.iter().any(|n| n == name) {
            return fail(&format!("no ring event named {name:?} in any incident file"));
        }
    }
    if expect_attribution && attributed_files == 0 {
        return fail("no incident file attributes a failed sensor");
    }

    println!(
        "incident validation passed: {} file(s), {} ring event(s), {} with failed-sensor attribution",
        paths.len(),
        total_ring_events,
        attributed_files
    );
    ExitCode::SUCCESS
}
