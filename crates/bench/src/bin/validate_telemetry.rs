//! CI telemetry smoke validator.
//!
//! Usage: `validate_telemetry <snapshot.json> <trace.json>`
//!
//! Parses both telemetry exports with the in-tree JSON parser and asserts
//! the minimum content the CI gate promises: a well-formed
//! `voltsense-metrics-v1` snapshot with at least one span, one counter,
//! and one histogram, and a Chrome trace with at least one complete
//! (`"ph": "X"`) event. Exits non-zero with a message on any violation,
//! so `ci.sh` can run it directly after an instrumented example.

use std::process::ExitCode;

use voltsense::telemetry::json::{self, Value};

fn fail(msg: &str) -> ExitCode {
    eprintln!("telemetry validation FAILED: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [snapshot_path, trace_path] = args.as_slice() else {
        return fail("usage: validate_telemetry <snapshot.json> <trace.json>");
    };

    let snapshot = match std::fs::read_to_string(snapshot_path) {
        Ok(s) => s,
        Err(e) => return fail(&format!("cannot read {snapshot_path}: {e}")),
    };
    let snapshot = match json::parse(&snapshot) {
        Ok(v) => v,
        Err(e) => return fail(&format!("{snapshot_path}: {e}")),
    };
    if snapshot.get("schema").and_then(Value::as_str) != Some("voltsense-metrics-v1") {
        return fail(&format!("{snapshot_path}: missing or wrong \"schema\" marker"));
    }
    let Some(metrics) = snapshot.get("metrics").and_then(Value::as_array) else {
        return fail(&format!("{snapshot_path}: no \"metrics\" array"));
    };
    let count_kind = |kind: &str| {
        metrics
            .iter()
            .filter(|m| m.get("kind").and_then(Value::as_str) == Some(kind))
            .count()
    };
    let counters = count_kind("counter");
    let histograms = count_kind("histogram");
    if counters == 0 {
        return fail(&format!("{snapshot_path}: no counter metrics"));
    }
    if histograms == 0 {
        return fail(&format!("{snapshot_path}: no histogram metrics"));
    }
    for m in metrics {
        if m.get("name").and_then(Value::as_str).is_none()
            || m.get("unit").and_then(Value::as_str).is_none()
            || m.get("value").is_none()
        {
            return fail(&format!(
                "{snapshot_path}: metric entry missing shared name/value/unit fields"
            ));
        }
    }
    let spans = snapshot
        .get("spans")
        .and_then(Value::as_array)
        .map_or(0, <[Value]>::len);
    if spans == 0 {
        return fail(&format!("{snapshot_path}: no spans captured"));
    }

    let trace = match std::fs::read_to_string(trace_path) {
        Ok(s) => s,
        Err(e) => return fail(&format!("cannot read {trace_path}: {e}")),
    };
    let trace = match json::parse(&trace) {
        Ok(v) => v,
        Err(e) => return fail(&format!("{trace_path}: {e}")),
    };
    let Some(events) = trace.get("traceEvents").and_then(Value::as_array) else {
        return fail(&format!("{trace_path}: no \"traceEvents\" array"));
    };
    let complete = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
        .count();
    if complete == 0 {
        return fail(&format!("{trace_path}: no complete (ph=X) span events"));
    }

    println!(
        "telemetry validation passed: {spans} spans, {counters} counters, \
         {histograms} histograms, {} trace events ({complete} complete)",
        events.len()
    );
    ExitCode::SUCCESS
}
