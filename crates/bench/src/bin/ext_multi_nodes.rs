//! Extension — multiple noise-critical representatives per block.
//!
//! The paper selects one representative node per block but notes "it is
//! easy for our model to handle the case with more representative nodes
//! per block" (its Section 2.1). This experiment runs the methodology with
//! 1, 2 and 3 worst nodes per block and measures what the extra coverage
//! buys: emergencies are defined over *all* of a block's monitored nodes,
//! so more representatives catch droops the single worst node misses.
//!
//! Run with: `cargo run --release -p voltsense-bench --bin ext_multi_nodes`

use voltsense::core::{Methodology, MethodologyConfig};
use voltsense::scenario::{CollectOptions, Scenario};
use voltsense_bench::{fmt_rate, rule, Scale, NUM_BENCHMARKS};

fn main() {
    let _telemetry = voltsense::telemetry::init_from_env("ext_multi_nodes");
    let scenario = match Scale::from_env() {
        Scale::Paper => Scenario::paper_scale(),
        Scale::Small => Scenario::small(),
    }
    .expect("scenario");
    let benchmarks: Vec<usize> = (0..NUM_BENCHMARKS).collect();
    let lattice = scenario.chip().lattice();
    let avg_nodes: f64 = scenario
        .chip()
        .blocks()
        .iter()
        .map(|b| lattice.nodes_in_block(b.id()).len() as f64)
        .sum::<f64>()
        / scenario.chip().blocks().len() as f64;
    println!(
        "avg lattice nodes per block: {avg_nodes:.1} (caps the representative count)\n"
    );

    println!(
        "{:>6} {:>8} {:>9} | {:>14} {:>8} {:>8} {:>8}",
        "reps", "K rows", "sensors", "rel err", "ME", "WAE", "TE"
    );
    rule(72);
    for reps in [1usize, 2, 3] {
        let data = scenario
            .collect_with(
                &benchmarks,
                &CollectOptions {
                    representatives_per_block: reps,
                    ..CollectOptions::default()
                },
            )
            .expect("collect");
        let (train, test) = data.split(3);
        let config = MethodologyConfig::default();
        let fitted = Methodology::fit_with_sensor_count(&train.x, &train.f, 16, &config)
            .expect("fit");
        let report = fitted.evaluate(&test.x, &test.f).expect("evaluate");
        println!(
            "{reps:>6} {:>8} {:>9} | {:>14.4e} {:>8} {:>8} {:>8}",
            data.num_blocks(),
            fitted.sensors().len(),
            report.relative_error,
            fmt_rate(report.detection.miss_rate),
            fmt_rate(report.detection.wrong_alarm_rate),
            fmt_rate(report.detection.total_error_rate),
        );
    }
    rule(72);
    println!(
        "\n(K grows with the representative count; the same 16 sensors now\n\
         predict more targets. ME/TE are measured against the *monitored*\n\
         node set, which itself grows — broader coverage at equal hardware\n\
         cost, exactly the extension the paper sketches.)"
    );
}
