//! Fig. 3 — sensor locations selected by Eagle-Eye vs. the proposed
//! approach when seven sensors are available for one core.
//!
//! Paper shape: Eagle-Eye clusters almost all sensors around the hot
//! execution unit (it chases worst-noise candidates); the proposed
//! approach spreads sensors across the core's units because it chases
//! correlation with every block, not noise magnitude.
//!
//! Run with: `cargo run --release -p voltsense-bench --bin fig3_placement_map`

use std::collections::HashMap;

use voltsense::core::{Methodology, MethodologyConfig};
use voltsense::eagleeye::{EagleEyeConfig, EagleEyePlacement};
use voltsense::floorplan::{CoreId, NodeSite, UnitGroup};
use voltsense_bench::Experiment;

fn main() {
    let _telemetry = voltsense::telemetry::init_from_env("fig3_placement_map");
    let exp = Experiment::from_env();
    let core = CoreId(0);
    let cand_rows = exp.partition.candidates_of(core);
    let block_rows = exp.partition.blocks_of(core);
    let sub = exp.train.restrict(cand_rows, block_rows);

    let q = 7;
    let proposed =
        Methodology::fit_with_sensor_count(&sub.x, &sub.f, q, &MethodologyConfig::default())
            .expect("proposed fit");
    let eagle = EagleEyePlacement::place(&sub.x, &sub.f, q, &EagleEyeConfig::default())
        .expect("eagle-eye placement");

    // Map local candidate indices back to lattice nodes.
    let lattice = exp.scenario.chip().lattice();
    let candidates = lattice.candidate_sites();
    let node_of = |local: usize| candidates[cand_rows[local]];

    let proposed_nodes: Vec<_> = proposed.sensors().iter().map(|&l| node_of(l)).collect();
    let eagle_nodes: Vec<_> = eagle.selected().iter().map(|&l| node_of(l)).collect();

    // ASCII map of the core tile: blocks shown by unit-group letter,
    // sensors by 'P' (proposed) / 'E' (eagle-eye) / 'B' (both).
    let core_rect = exp.scenario.chip().core(core).expect("core exists").rect;
    println!(
        "core {core} tile; blocks: F=frontend X=execution L=load-store M=memory; \
         sensors: P=proposed E=eagle-eye B=both\n"
    );
    for iy in (0..lattice.ny()).rev() {
        let mut line = String::new();
        let mut any = false;
        for ix in 0..lattice.nx() {
            let id = lattice.node_at(ix, iy).expect("in range");
            let p = lattice.position(id);
            if !core_rect.contains(p) {
                continue;
            }
            any = true;
            let in_p = proposed_nodes.contains(&id);
            let in_e = eagle_nodes.contains(&id);
            let ch = match (in_p, in_e) {
                (true, true) => 'B',
                (true, false) => 'P',
                (false, true) => 'E',
                (false, false) => match lattice.site(id) {
                    NodeSite::FunctionArea(b) => {
                        match exp.scenario.chip().blocks()[b.0].kind().unit_group() {
                            UnitGroup::Frontend => 'F',
                            UnitGroup::Execution => 'X',
                            UnitGroup::LoadStore => 'L',
                            UnitGroup::Memory => 'M',
                        }
                    }
                    NodeSite::BlankArea => '·',
                },
            };
            line.push(ch);
            line.push(' ');
        }
        if any {
            println!("  {line}");
        }
    }

    // Quantify the clustering: distance of each sensor to the execution
    // cluster's centroid.
    let exec_centroid = {
        let (mut sx, mut sy, mut n) = (0.0, 0.0, 0.0);
        for b in exp.scenario.chip().blocks_of_core(core) {
            if b.kind().unit_group() == UnitGroup::Execution {
                sx += b.rect().center().x;
                sy += b.rect().center().y;
                n += 1.0;
            }
        }
        voltsense::floorplan::Point::new(sx / n, sy / n)
    };
    let mean_dist = |nodes: &[voltsense::floorplan::NodeId]| {
        nodes
            .iter()
            .map(|&n| lattice.position(n).distance_to(exec_centroid))
            .sum::<f64>()
            / nodes.len() as f64
    };
    println!(
        "\nmean distance to execution-unit centroid: eagle-eye {:.0} µm, \
         proposed {:.0} µm",
        mean_dist(&eagle_nodes),
        mean_dist(&proposed_nodes)
    );

    // Per-unit tallies of the nearest block unit of each sensor.
    let nearest_group = |node: voltsense::floorplan::NodeId| {
        exp.scenario
            .chip()
            .blocks_of_core(core)
            .min_by(|a, b| {
                let da = a.rect().center().distance_to(lattice.position(node));
                let db = b.rect().center().distance_to(lattice.position(node));
                da.partial_cmp(&db).expect("finite")
            })
            .expect("core has blocks")
            .kind()
            .unit_group()
    };
    for (label, nodes) in [("eagle-eye", &eagle_nodes), ("proposed", &proposed_nodes)] {
        let mut tally: HashMap<UnitGroup, usize> = HashMap::new();
        for &n in nodes.iter() {
            *tally.entry(nearest_group(n)).or_default() += 1;
        }
        let counts: Vec<String> = UnitGroup::ALL
            .iter()
            .map(|g| format!("{g}: {}", tally.get(g).copied().unwrap_or(0)))
            .collect();
        println!("{label:<10} sensors near units — {}", counts.join(", "));
    }
    println!(
        "\npaper shape: eagle-eye concentrates near the execution unit; the \
         proposed approach spreads sensors across units"
    );
}
