//! Ablation — does the *group* structure of the group lasso matter, or
//! would independent per-block lassos (union of supports) pick sensors
//! just as well?
//!
//! Group lasso couples all K prediction tasks through the per-candidate
//! column norm, so a sensor is kept only if it helps the chip as a whole.
//! Per-task lassos each pick their own favourite candidates; their union
//! balloons (or, truncated to the same budget, covers the blocks
//! unevenly). This experiment compares prediction accuracy at matched
//! sensor counts.
//!
//! Run with: `cargo run --release -p voltsense-bench --bin ablation_grouping`

use voltsense::core::{metrics, Methodology, MethodologyConfig, VoltageMapModel};
use voltsense::grouplasso::{solve_penalized, GlOptions, GlProblem};
use voltsense::linalg::stats::Normalizer;
use voltsense_bench::{rule, Experiment};

fn main() {
    let _telemetry = voltsense::telemetry::init_from_env("ablation_grouping");
    let exp = Experiment::from_env();
    let config = MethodologyConfig::default();

    // Normalized data, shared by both selection rules.
    let z = Normalizer::fit(&exp.train.x)
        .apply(&exp.train.x)
        .expect("normalize X");
    let g_all = Normalizer::fit(&exp.train.f)
        .apply(&exp.train.f)
        .expect("normalize F");

    println!(
        "{:>8} | {:>9} {:>15} | {:>9} {:>15}",
        "target Q", "GL Q", "GL rel err", "lasso Q", "lasso rel err"
    );
    rule(68);

    for q_target in [8usize, 16, 32] {
        // Group lasso at the target count.
        let gl = Methodology::fit_with_sensor_count(&exp.train.x, &exp.train.f, q_target, &config)
            .expect("GL fit");
        let gl_pred = gl
            .model()
            .predict_matrix(&exp.test.x)
            .expect("GL predict");
        let gl_err = metrics::relative_error(&gl_pred, &exp.test.f).expect("metric");

        // Independent lassos: for each block, a single-task problem; rank
        // candidates by how often/strongly tasks want them, then take the
        // top q_target. The candidate Gram matrix S = Z Zᵀ is shared by
        // every task, so compute the covariance form once.
        let full = GlProblem::from_data(&z, &g_all).expect("problem");
        let mut votes = vec![0.0f64; exp.train.x.rows()];
        let opts = GlOptions::default();
        for k in 0..g_all.rows() {
            let q_k = full.q().select_rows(&[k]);
            let gg_k: f64 = g_all.row(k).iter().map(|v| v * v).sum();
            let p = GlProblem::from_covariance(full.s().clone(), q_k, gg_k)
                .expect("per-task problem");
            // A per-task penalty in the same relative position as a
            // mid-path GL solve.
            let mu = p.mu_max() * 0.3;
            let sol = solve_penalized(&p, mu, &opts, None).expect("lasso solve");
            for (m, n) in sol.group_norms().iter().enumerate() {
                votes[m] += n;
            }
        }
        let mut order: Vec<usize> = (0..votes.len()).collect();
        order.sort_by(|&a, &b| votes[b].partial_cmp(&votes[a]).expect("finite"));
        let lasso_sensors: Vec<usize> = {
            let mut s = order[..q_target.min(order.len())].to_vec();
            s.sort_unstable();
            s
        };
        let lasso_model = VoltageMapModel::fit(&exp.train.x, &exp.train.f, &lasso_sensors)
            .expect("lasso refit");
        let lasso_pred = lasso_model
            .predict_matrix(&exp.test.x)
            .expect("lasso predict");
        let lasso_err = metrics::relative_error(&lasso_pred, &exp.test.f).expect("metric");

        println!(
            "{q_target:>8} | {:>9} {gl_err:>15.4e} | {:>9} {lasso_err:>15.4e}",
            gl.sensors().len(),
            lasso_sensors.len()
        );
    }
    rule(68);
    println!(
        "\nshape: at matched budgets the group-coupled selection should match\n\
         or beat the per-task union — the grouping is what shares sensors\n\
         across all K prediction targets."
    );
}
