//! Extension — the ME/WAE operating curve under detection guardbands.
//!
//! The paper evaluates both detectors at a single operating point (alarm
//! exactly at the 0.85 V emergency threshold). Any deployed detector has a
//! guardband knob: alarm when the (measured or predicted) voltage falls
//! below `threshold + guardband`, trading wrong alarms for misses. This
//! experiment sweeps that knob for both approaches and prints the ME/WAE
//! curves — showing *why* the prediction model dominates: at every
//! guardband it sits closer to the ideal (0, 0) corner.
//!
//! Run with: `cargo run --release -p voltsense-bench --bin ext_guardband_tradeoff`

use voltsense::core::{detection, MethodologyConfig};
use voltsense::eagleeye::{EagleEyeConfig, EagleEyePlacement};
use voltsense::scenario::PerCoreModel;
use voltsense_bench::{fmt_rate, rule, Experiment};

fn main() {
    let _telemetry = voltsense::telemetry::init_from_env("ext_guardband_tradeoff");
    let exp = Experiment::from_env();
    let config = MethodologyConfig::default();
    let threshold = config.emergency_threshold;

    // Equal hardware: 2 sensors per core for both approaches.
    let proposed = PerCoreModel::fit_with_sensor_count(&exp.train, &exp.partition, 2, &config)
        .expect("proposed fit");
    let q = proposed.total_sensors();
    let truth = detection::ground_truth(&exp.test.f, threshold);
    println!(
        "{} sensors each; {} test samples, {} emergencies\n",
        q,
        truth.len(),
        truth.iter().filter(|&&t| t).count()
    );

    // The proposed detector's predictions are fixed; its knob shifts the
    // decision threshold on the *predicted* voltages.
    let predicted = proposed
        .predict_matrix(&exp.test.x)
        .expect("proposed predictions");

    println!(
        "{:>10} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "guardband", "EE ME", "EE WAE", "EE TE", "our ME", "our WAE", "our TE"
    );
    rule(74);
    for guardband_mv in [-10.0f64, -5.0, 0.0, 5.0, 10.0, 20.0] {
        let guardband = guardband_mv * 1e-3;

        // Eagle-Eye refits its placement for each guardband (its training
        // objective depends on the alarm level).
        let eagle = EagleEyePlacement::place(
            &exp.train.x,
            &exp.train.f,
            q,
            &EagleEyeConfig {
                emergency_threshold: threshold,
                guardband,
            },
        )
        .expect("eagle placement");
        let eagle_alarms = eagle.detect_matrix(&exp.test.x).expect("eagle detect");
        let e = detection::evaluate(&truth, &eagle_alarms).expect("evaluate");

        let alarm_level = threshold + guardband;
        let our_alarms: Vec<bool> = (0..predicted.cols())
            .map(|s| (0..predicted.rows()).any(|k| predicted[(k, s)] < alarm_level))
            .collect();
        let p = detection::evaluate(&truth, &our_alarms).expect("evaluate");

        println!(
            "{:>7.0} mV | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
            guardband_mv,
            fmt_rate(e.miss_rate),
            fmt_rate(e.wrong_alarm_rate),
            fmt_rate(e.total_error_rate),
            fmt_rate(p.miss_rate),
            fmt_rate(p.wrong_alarm_rate),
            fmt_rate(p.total_error_rate),
        );
    }
    rule(74);
    println!(
        "\nreading the curve: guardbands exchange ME for WAE on both\n\
         detectors. The prediction model's zero-guardband point matches or\n\
         beats every operating point on Eagle-Eye's curve while needing no\n\
         tuning and far fewer wrong alarms at equal TE — because the raw\n\
         blank-area readings systematically under-estimate function-area\n\
         droop, Eagle-Eye must buy its misses back with a margin paid in\n\
         wrong alarms."
    );
}
