//! Extension — data-driven penalty selection by cross-validation.
//!
//! The paper sweeps λ by hand and leaves choosing it to the designer
//! ("how to determine the value of λ depends both on the design overhead
//! … and the prediction accuracy", Section 2.2/2.4). This experiment runs
//! the standard k-fold answer: cross-validate the penalized group lasso
//! over a μ grid, report the CV curve, and show where the CV-chosen
//! penalty lands on the sensor-count/accuracy trade-off.
//!
//! Run with: `cargo run --release -p voltsense-bench --bin ext_lambda_cv`

use voltsense::core::{metrics, SelectionProblem, VoltageMapModel};
use voltsense::grouplasso::{cross_validate, GlOptions};
use voltsense::linalg::stats::Normalizer;
use voltsense_bench::{rule, sparkline, Experiment};

fn main() {
    let _telemetry = voltsense::telemetry::init_from_env("ext_lambda_cv");
    let exp = Experiment::from_env();

    // CV works on the normalized training data; restrict to one core's
    // candidates for a readable problem size.
    let core0 = exp.partition.candidates_of(voltsense::floorplan::CoreId(0));
    let blocks0 = exp.partition.blocks_of(voltsense::floorplan::CoreId(0));
    let sub = exp.train.restrict(core0, blocks0);
    let sub_test = exp.test.restrict(core0, blocks0);

    let z = Normalizer::fit(&sub.x).apply(&sub.x).expect("normalize");
    let g = Normalizer::fit(&sub.f).apply(&sub.f).expect("normalize");

    // Log-spaced μ grid as a fraction of μ_max.
    let prepared = SelectionProblem::new(&sub.x, &sub.f).expect("prepared");
    let problem = voltsense::grouplasso::GlProblem::from_data(&z, &g).expect("problem");
    let mu_max = problem.mu_max();
    let mus: Vec<f64> = (0..10).map(|i| mu_max * 0.5f64.powi(i + 1)).collect();

    let cv = cross_validate(&z, &g, &mus, 5, &GlOptions::default()).expect("cv");
    println!("5-fold CV over {} penalties (μ_max = {mu_max:.3e})\n", mus.len());
    println!("CV error curve: {}", sparkline(&cv.mean_errors));
    println!(
        "{:>14} {:>14} {:>10} {:>10}",
        "mu", "cv error", "best?", "1-SE?"
    );
    rule(52);
    for (i, (&mu, &err)) in cv.mus.iter().zip(&cv.mean_errors).enumerate() {
        println!(
            "{mu:>14.4e} {err:>14.6e} {:>10} {:>10}",
            if i == cv.best_index { "<-- best" } else { "" },
            if i == cv.one_se_index { "<-- 1-SE" } else { "" },
        );
    }
    rule(52);

    // What do the CV choices buy on held-out data?
    for (label, mu) in [("best", cv.best_mu()), ("1-SE", cv.one_se_mu())] {
        // Convert the penalty into a selection (budget reported back).
        let sol = voltsense::grouplasso::solve_penalized(
            &problem,
            mu,
            &GlOptions::default(),
            None,
        )
        .expect("solve at CV mu");
        let sensors = sol.selected(1e-3);
        if sensors.is_empty() {
            println!("{label}: μ = {mu:.3e} selects no sensors");
            continue;
        }
        let model = VoltageMapModel::fit(&sub.x, &sub.f, &sensors).expect("refit");
        let pred = model.predict_matrix(&sub_test.x).expect("predict");
        let err = metrics::relative_error(&pred, &sub_test.f).expect("metric");
        println!(
            "{label:<5} μ = {mu:.3e}: {} sensors (budget {:.2}), held-out rel err {err:.4e}",
            sensors.len(),
            sol.budget(),
        );
    }
    let _ = prepared.num_candidates();
    println!(
        "\n(the CV minimum sits at a small penalty — accuracy keeps improving\n\
         with more sensors — while the 1-SE rule picks the hardware-frugal\n\
         choice the paper's designers would; both are now data-driven)"
    );
}
