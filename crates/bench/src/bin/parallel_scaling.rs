//! Parallel-scaling bench: wall-clock speedup versus thread count for the
//! four workloads the data-parallel runtime targets —
//!
//! * **matmul** — the blocked row-partitioned dense kernel;
//! * **gram** — the triangle-partitioned `Z Zᵀ` reduction;
//! * **gl_solve** — a FISTA group-lasso solve at the placement problem
//!   size (M=200 candidates, K=30 targets, N=1000 samples), dominated by
//!   the per-iteration `β·S` matmul;
//! * **scenario_collect** — the training-data generation path: one
//!   independent power-grid transient per benchmark, collected
//!   concurrently (the small 2-core chip, all 19 benchmarks, so the bench
//!   stays runnable everywhere).
//!
//! Each workload runs at 1/2/4/N threads (`N` = the configured pool
//! size). Before any timing is trusted, the output at every thread count
//! is checked **bit-identical** to the single-threaded run — the
//! determinism contract of DESIGN.md §8 — and the binary aborts if not.
//!
//! The speedup gate is machine-aware: at least `VOLTSENSE_MIN_SPEEDUP`
//! (default 1.0 with ≥ 4 cores, 0.6 below — a 1-core runner cannot speed
//! up, only pay overhead) must be reached by each workload's best thread
//! count. Speedups are reported in the JSON but kept *out* of the
//! `benchmarks` array, so the ±30% `bench_compare` gate sees only the
//! per-thread-count medians.
//!
//! Run with: `cargo run --release -p voltsense-bench --bin parallel_scaling`
//! (env: `VOLTSENSE_BENCH_REPS` to change the reps-per-median, default 3).

use std::time::Instant;

use voltsense::grouplasso::{solve_penalized_fista, GlOptions, GlProblem};
use voltsense::linalg::Matrix;
use voltsense::parallel;
use voltsense::scenario::Scenario;
use voltsense::telemetry::env;
use voltsense::workload::GaussianRng;
use voltsense_bench::{results_dir, rule, NUM_BENCHMARKS};

/// One timed point: a workload at a thread count.
struct Point {
    workload: &'static str,
    threads: usize,
    median_ns: u128,
    speedup: f64,
}

/// Median wall time of `reps` runs, plus the last run's output.
fn time_median<T>(reps: usize, mut f: impl FnMut() -> T) -> (u128, T) {
    let mut times = Vec::with_capacity(reps);
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        out = Some(f());
        times.push(t0.elapsed().as_nanos());
    }
    times.sort_unstable();
    (times[times.len() / 2], out.expect("reps >= 1"))
}

/// Exact bit equality — `==` on f64 would let `-0.0 == 0.0` slip through.
fn bits_equal(a: &[Matrix], b: &[Matrix]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.shape() == y.shape()
                && x.as_slice()
                    .iter()
                    .zip(y.as_slice())
                    .all(|(u, v)| u.to_bits() == v.to_bits())
        })
}

fn gl_problem(m: usize, k: usize, n: usize, seed: u64) -> GlProblem {
    let mut rng = GaussianRng::seed_from_u64(seed);
    let mut z = Matrix::zeros(m, n);
    for v in z.as_mut_slice() {
        *v = rng.sample();
    }
    let mut g = Matrix::zeros(k, n);
    for kk in 0..k {
        let a = rng.uniform_index(m);
        let b = rng.uniform_index(m);
        for s in 0..n {
            g[(kk, s)] = 0.8 * z[(a, s)] + 0.3 * z[(b, s)] + 0.05 * rng.sample();
        }
    }
    GlProblem::from_data(&z, &g).expect("valid problem")
}

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = GaussianRng::seed_from_u64(seed);
    let mut m = Matrix::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = rng.sample();
    }
    m
}

fn main() {
    let _telemetry = voltsense::telemetry::init_from_env("parallel_scaling");
    let reps = env::parse::<usize>("VOLTSENSE_BENCH_REPS")
        .filter(|&r| r > 0)
        .unwrap_or(3);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let min_speedup = env::parse::<f64>("VOLTSENSE_MIN_SPEEDUP")
        .unwrap_or(if cores >= 4 { 1.0 } else { 0.6 });

    let mut counts = vec![1usize, 2, 4, parallel::configured_threads()];
    counts.sort_unstable();
    counts.dedup();

    // Workload inputs, built once; every timed closure is a pure function
    // of them.
    let a = random_matrix(400, 300, 11);
    let b = random_matrix(300, 350, 13);
    let z = random_matrix(300, 800, 17);
    let p = gl_problem(200, 30, 1000, 42);
    let mu = p.mu_max() * 0.3;
    let opts = GlOptions::default();
    let scen = Scenario::small().expect("small scenario");
    let benchmarks: Vec<usize> = (0..NUM_BENCHMARKS).collect();

    type Workload<'a> = (&'static str, Box<dyn Fn() -> Vec<Matrix> + 'a>);
    let workloads: Vec<Workload> = vec![
        ("matmul", Box::new(|| vec![a.matmul(&b).expect("shapes agree")])),
        ("gram", Box::new(|| vec![z.gram()])),
        ("gl_solve", Box::new(|| {
            vec![solve_penalized_fista(&p, mu, &opts, None).expect("solve").beta]
        })),
        ("scenario_collect", Box::new(|| {
            let d = scen.collect(&benchmarks).expect("simulation");
            vec![d.x, d.f]
        })),
    ];

    println!(
        "parallel scaling: {cores} core(s), thread counts {counts:?}, {reps} rep(s)/median, \
         min-speedup gate {min_speedup}"
    );
    println!("{:<18} {:>7} {:>14} {:>9}  bit-identical", "workload", "threads", "median ns", "speedup");
    rule(64);

    let mut points: Vec<Point> = Vec::new();
    let mut gate_failures = Vec::new();
    for (name, run) in &workloads {
        let (base_ns, base_out) = parallel::with_threads(1, || time_median(reps, run));
        let mut best = 1.0f64;
        for &t in &counts {
            let (ns, out) = if t == 1 {
                (base_ns, base_out.clone())
            } else {
                parallel::with_threads(t, || time_median(reps, run))
            };
            let identical = bits_equal(&out, &base_out);
            assert!(
                identical,
                "{name} at {t} threads is NOT bit-identical to the serial run — \
                 the determinism contract is broken"
            );
            let speedup = base_ns as f64 / ns.max(1) as f64;
            best = best.max(speedup);
            println!("{name:<18} {t:>7} {ns:>14} {speedup:>8.2}x  yes");
            points.push(Point {
                workload: name,
                threads: t,
                median_ns: ns,
                speedup,
            });
        }
        if best < min_speedup {
            gate_failures.push(format!("{name}: best speedup {best:.2} < {min_speedup}"));
        }
    }
    rule(64);

    let json = to_json(cores, reps, min_speedup, &counts, &points);
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("bench_parallel_scaling.json");
    std::fs::write(&path, json).expect("write results");
    println!("wrote {}", path.display());

    if !gate_failures.is_empty() {
        eprintln!("parallel_scaling FAILED the speedup gate:");
        for f in &gate_failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!("all workloads bit-identical across thread counts; speedup gate ≥ {min_speedup} met");
}

fn to_json(
    cores: usize,
    reps: usize,
    min_speedup: f64,
    counts: &[usize],
    points: &[Point],
) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"schema\": \"voltsense-metrics-v1\",\n");
    s.push_str("  \"suite\": \"parallel_scaling\",\n");
    s.push_str(&format!("  \"cores\": {cores},\n"));
    s.push_str(&format!("  \"reps\": {reps},\n"));
    s.push_str(&format!("  \"min_speedup_gate\": {min_speedup},\n"));
    s.push_str(&format!(
        "  \"thread_counts\": [{}],\n",
        counts.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ")
    ));
    s.push_str("  \"bit_identical\": true,\n");
    // Speedups live OUTSIDE the benchmarks array on purpose: bench_compare
    // gates every `benchmarks` entry at ±30%, and a speedup ratio on a
    // noisy runner would flap the gate without measuring a regression.
    s.push_str("  \"speedups\": {\n");
    let names: Vec<&'static str> = {
        let mut seen = Vec::new();
        for p in points {
            if !seen.contains(&p.workload) {
                seen.push(p.workload);
            }
        }
        seen
    };
    for (i, name) in names.iter().enumerate() {
        let per: Vec<String> = points
            .iter()
            .filter(|p| p.workload == *name)
            .map(|p| format!("\"t{}\": {:.4}", p.threads, p.speedup))
            .collect();
        s.push_str(&format!("    \"{name}\": {{{}}}", per.join(", ")));
        s.push_str(if i + 1 < names.len() { ",\n" } else { "\n" });
    }
    s.push_str("  },\n");
    s.push_str("  \"benchmarks\": [\n");
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}/t{}\", \"value\": {}, \"unit\": \"ns\", \"median_ns\": {}, \"threads\": {}}}",
            p.workload, p.threads, p.median_ns, p.median_ns, p.threads
        ));
        s.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}
