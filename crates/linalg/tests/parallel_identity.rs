//! Serial/parallel bit-identity for the dense kernels (DESIGN.md §8).
//!
//! Every parallel kernel in `voltsense-linalg` must return **exactly** the
//! same bits at any thread count, because each output entry keeps its
//! serial accumulation order. These suites compare against a serial oracle
//! with `assert_eq!` — no tolerance — at sizes large enough to actually
//! fan out (the kernels skip dispatch below a work threshold, so small
//! shapes would only exercise the inline path).

use voltsense_parallel::with_threads;
use voltsense_testkit::{forall, matrix, vec_f64};

/// Thread counts swept by every property; 1 pins the inline path, the
/// rest force real fan-out even on a single-core machine.
const THREADS: [usize; 4] = [1, 2, 4, 8];

#[test]
fn matmul_bit_identical_across_thread_counts() {
    // 130×60 · 60×70: per-row work 4200 FMAs → the kernel splits into ~3
    // chunks, so partitioning and k-blocking are both exercised.
    forall!(cases = 8, (a in matrix(130, 60, -10.0, 10.0),
                        b in matrix(60, 70, -10.0, 10.0)) => {
        let oracle = a.matmul_serial(&b).unwrap();
        for threads in THREADS {
            let got = with_threads(threads, || a.matmul(&b).unwrap());
            assert_eq!(got, oracle, "matmul diverged at {threads} threads");
        }
    });
}

#[test]
fn matmul_bit_identical_on_odd_small_shapes() {
    // Small and ragged shapes run inline; identity with the naive oracle
    // still pins that k-blocking does not reorder accumulation.
    forall!(cases = 32, (a in matrix(7, 13, -10.0, 10.0),
                         b in matrix(13, 3, -10.0, 10.0)) => {
        let oracle = a.matmul_serial(&b).unwrap();
        for threads in THREADS {
            let got = with_threads(threads, || a.matmul(&b).unwrap());
            assert_eq!(got, oracle, "matmul diverged at {threads} threads");
        }
    });
}

#[test]
fn gram_bit_identical_across_thread_counts() {
    // 120 rows × 150 cols: ~1.1M FMAs in the upper triangle → up to 4
    // strided row-set tasks.
    forall!(cases = 8, (m in matrix(120, 150, -10.0, 10.0)) => {
        let oracle = with_threads(1, || m.gram());
        for threads in THREADS {
            let got = with_threads(threads, || m.gram());
            assert_eq!(got, oracle, "gram diverged at {threads} threads");
        }
    });
}

#[test]
fn matvec_bit_identical_across_thread_counts() {
    // 1100×500: min task is ~525 rows, so ≥ 2 chunks fan out.
    forall!(cases = 4, (m in matrix(1100, 500, -10.0, 10.0),
                        v in vec_f64(500, -10.0, 10.0)) => {
        let oracle = with_threads(1, || m.matvec(&v).unwrap());
        for threads in THREADS {
            let got = with_threads(threads, || m.matvec(&v).unwrap());
            assert_eq!(got, oracle, "matvec diverged at {threads} threads");
        }
    });
}

#[test]
fn transpose_and_select_rows_bit_identical_across_thread_counts() {
    forall!(cases = 4, (m in matrix(300, 500, -10.0, 10.0)) => {
        let t1 = with_threads(1, || m.transpose());
        let sel: Vec<usize> = (0..300).map(|i| (i * 7) % m.rows()).collect();
        let s1 = with_threads(1, || m.select_rows(&sel));
        for threads in THREADS {
            assert_eq!(with_threads(threads, || m.transpose()), t1,
                       "transpose diverged at {threads} threads");
            assert_eq!(with_threads(threads, || m.select_rows(&sel)), s1,
                       "select_rows diverged at {threads} threads");
        }
        assert_eq!(t1.transpose(), m);
    });
}
