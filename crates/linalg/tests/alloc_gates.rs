//! Zero-allocation gates for the hot dense kernels.
//!
//! Each gate pins the contract that the `_into` variants of the blocked
//! kernels allocate nothing at steady state when run serially (the
//! parallel paths allocate their block descriptors by design; the gates
//! force the inline path with `with_threads(1)`). A regression that
//! sneaks a `Vec` or a temporary `Matrix` into the inner loops fails
//! these tests with a per-iteration allocation count.

voltsense_telemetry::install_counting_allocator!();

use voltsense_linalg::Matrix;
use voltsense_parallel::with_threads;
use voltsense_telemetry::alloc_gate;

/// Deterministic dense test matrix: no RNG, values well-scaled so the
/// kernels exercise their fused loops without overflow.
fn filled(rows: usize, cols: usize, seed: f64) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            m[(i, j)] = ((i * cols + j) as f64).sin() * 0.5 + seed;
        }
    }
    m
}

#[test]
fn matmul_into_is_alloc_free_serial() {
    with_threads(1, || {
        let a = filled(24, 16, 0.1);
        let b = filled(16, 12, -0.2);
        let mut out = Matrix::zeros(24, 12);
        alloc_gate!("linalg.matmul_into", 16, || {
            a.matmul_into(&b, &mut out).unwrap();
        });
    });
}

#[test]
fn gram_into_is_alloc_free_serial() {
    with_threads(1, || {
        let a = filled(20, 14, 0.3);
        let mut out = Matrix::zeros(20, 20);
        alloc_gate!("linalg.gram_into", 16, || {
            a.gram_into(&mut out).unwrap();
        });
    });
}

#[test]
fn matvec_into_is_alloc_free() {
    with_threads(1, || {
        let a = filled(32, 24, -0.1);
        let v: Vec<f64> = (0..24).map(|i| (i as f64) * 0.25 - 3.0).collect();
        let mut out = vec![0.0; 32];
        alloc_gate!("linalg.matvec_into", 32, || {
            a.matvec_into(&v, &mut out).unwrap();
        });
    });
}
