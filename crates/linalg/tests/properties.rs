//! Property-based tests for the dense linear-algebra kernels.

use proptest::prelude::*;
use voltsense_linalg::decomp::{Cholesky, Lu, Qr};
use voltsense_linalg::stats::Normalizer;
use voltsense_linalg::{lstsq, Matrix};

/// Strategy: a matrix of the given shape with entries in [-10, 10].
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0..10.0f64, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).expect("shape"))
}

/// Strategy: a well-conditioned SPD matrix A = B Bᵀ + n·I.
fn spd(n: usize) -> impl Strategy<Value = Matrix> {
    matrix(n, n).prop_map(move |b| {
        let mut a = b.gram();
        for i in 0..n {
            a[(i, i)] += n as f64 + 1.0;
        }
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involution(m in matrix(4, 7)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_associative(a in matrix(3, 4), b in matrix(4, 2), c in matrix(2, 5)) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(left.approx_eq(&right, 1e-8));
    }

    #[test]
    fn matmul_transpose_identity(a in matrix(3, 4), b in matrix(4, 2)) {
        // (AB)ᵀ = Bᵀ Aᵀ
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn frobenius_triangle_inequality(a in matrix(3, 3), b in matrix(3, 3)) {
        let sum = &a + &b;
        prop_assert!(sum.frobenius_norm() <= a.frobenius_norm() + b.frobenius_norm() + 1e-12);
    }

    #[test]
    fn cholesky_reconstructs(a in spd(5)) {
        let chol = Cholesky::new(&a).unwrap();
        let l = chol.l();
        let llt = l.matmul(&l.transpose()).unwrap();
        prop_assert!(llt.approx_eq(&a, 1e-7 * a.max_abs().max(1.0)));
    }

    #[test]
    fn cholesky_solve_residual(a in spd(5), b in proptest::collection::vec(-5.0..5.0f64, 5)) {
        let chol = Cholesky::new(&a).unwrap();
        let x = chol.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (ai, bi) in ax.iter().zip(&b) {
            prop_assert!((ai - bi).abs() < 1e-7);
        }
    }

    #[test]
    fn lu_solve_residual(a in spd(4), b in proptest::collection::vec(-5.0..5.0f64, 4)) {
        // SPD matrices are certainly invertible.
        let lu = Lu::new(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (ai, bi) in ax.iter().zip(&b) {
            prop_assert!((ai - bi).abs() < 1e-7);
        }
    }

    #[test]
    fn lu_det_matches_cholesky_logdet(a in spd(4)) {
        let lu = Lu::new(&a).unwrap();
        let chol = Cholesky::new(&a).unwrap();
        let det = lu.det();
        prop_assert!(det > 0.0);
        prop_assert!((det.ln() - chol.log_det()).abs() < 1e-6 * chol.log_det().abs().max(1.0));
    }

    #[test]
    fn qr_least_squares_residual_orthogonal(
        a in matrix(8, 3),
        b in proptest::collection::vec(-5.0..5.0f64, 8),
    ) {
        let qr = Qr::new(&a).unwrap();
        if let Ok(x) = qr.solve_least_squares(&b) {
            let ax = a.matvec(&x).unwrap();
            let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
            let atr = a.transpose().matvec(&r).unwrap();
            for v in atr {
                prop_assert!(v.abs() < 1e-6);
            }
        }
    }

    #[test]
    fn normalizer_round_trip(m in matrix(4, 9)) {
        let norm = Normalizer::fit(&m);
        let z = norm.apply(&m).unwrap();
        let back = norm.invert(&z).unwrap();
        prop_assert!(back.approx_eq(&m, 1e-9 * m.max_abs().max(1.0)));
    }

    #[test]
    fn ols_never_worse_than_mean_model(x in matrix(2, 12), f in matrix(1, 12)) {
        let fit = lstsq::ols_with_intercept(&x, &f).unwrap();
        // The intercept-only model (predict the mean) is in the OLS model
        // class, so OLS training RMS cannot exceed the response std-dev.
        let mu: f64 = f.row(0).iter().sum::<f64>() / 12.0;
        let std = (f.row(0).iter().map(|&v| (v - mu) * (v - mu)).sum::<f64>() / 12.0).sqrt();
        prop_assert!(fit.rms_residual <= std + 1e-8);
    }

    #[test]
    fn ridge_monotone_coefficient_norm(x in matrix(2, 10), f in matrix(1, 10)) {
        // Coefficient norm is non-increasing in the ridge strength.
        let f0 = lstsq::ridge_with_intercept(&x, &f, 0.0).unwrap();
        let f1 = lstsq::ridge_with_intercept(&x, &f, 1.0).unwrap();
        let f2 = lstsq::ridge_with_intercept(&x, &f, 100.0).unwrap();
        let n0 = f0.coefficients.frobenius_norm();
        let n1 = f1.coefficients.frobenius_norm();
        let n2 = f2.coefficients.frobenius_norm();
        prop_assert!(n1 <= n0 + 1e-9);
        prop_assert!(n2 <= n1 + 1e-9);
    }
}
