//! Property-based tests for the dense linear-algebra kernels (testkit
//! harness: 64 deterministic seeded cases per property, greedy shrinking).

use voltsense_linalg::decomp::{Cholesky, Lu, Qr};
use voltsense_linalg::stats::Normalizer;
use voltsense_linalg::lstsq;
use voltsense_testkit::{forall, matrix, spd, vec_f64};

#[test]
fn transpose_is_involution() {
    forall!(cases = 64, (m in matrix(4, 7, -10.0, 10.0)) => {
        assert_eq!(m.transpose().transpose(), m);
    });
}

#[test]
fn matmul_associative() {
    forall!(cases = 64, (a in matrix(3, 4, -10.0, 10.0),
                         b in matrix(4, 2, -10.0, 10.0),
                         c in matrix(2, 5, -10.0, 10.0)) => {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        assert!(left.approx_eq(&right, 1e-8));
    });
}

#[test]
fn matmul_transpose_identity() {
    forall!(cases = 64, (a in matrix(3, 4, -10.0, 10.0),
                         b in matrix(4, 2, -10.0, 10.0)) => {
        // (AB)ᵀ = Bᵀ Aᵀ
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        assert!(lhs.approx_eq(&rhs, 1e-9));
    });
}

#[test]
fn frobenius_triangle_inequality() {
    forall!(cases = 64, (a in matrix(3, 3, -10.0, 10.0),
                         b in matrix(3, 3, -10.0, 10.0)) => {
        let sum = &a + &b;
        assert!(sum.frobenius_norm() <= a.frobenius_norm() + b.frobenius_norm() + 1e-12);
    });
}

#[test]
fn cholesky_reconstructs() {
    forall!(cases = 64, (a in spd(5)) => {
        let chol = Cholesky::new(&a).unwrap();
        let l = chol.l();
        let llt = l.matmul(&l.transpose()).unwrap();
        assert!(llt.approx_eq(&a, 1e-7 * a.max_abs().max(1.0)));
    });
}

#[test]
fn cholesky_solve_residual() {
    forall!(cases = 64, (a in spd(5), b in vec_f64(5, -5.0, 5.0)) => {
        let chol = Cholesky::new(&a).unwrap();
        let x = chol.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (ai, bi) in ax.iter().zip(&b) {
            assert!((ai - bi).abs() < 1e-7);
        }
    });
}

#[test]
fn lu_solve_residual() {
    forall!(cases = 64, (a in spd(4), b in vec_f64(4, -5.0, 5.0)) => {
        // SPD matrices are certainly invertible.
        let lu = Lu::new(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (ai, bi) in ax.iter().zip(&b) {
            assert!((ai - bi).abs() < 1e-7);
        }
    });
}

#[test]
fn lu_det_matches_cholesky_logdet() {
    forall!(cases = 64, (a in spd(4)) => {
        let lu = Lu::new(&a).unwrap();
        let chol = Cholesky::new(&a).unwrap();
        let det = lu.det();
        assert!(det > 0.0);
        assert!((det.ln() - chol.log_det()).abs() < 1e-6 * chol.log_det().abs().max(1.0));
    });
}

#[test]
fn qr_least_squares_residual_orthogonal() {
    forall!(cases = 64, (a in matrix(8, 3, -10.0, 10.0),
                         b in vec_f64(8, -5.0, 5.0)) => {
        let qr = Qr::new(&a).unwrap();
        if let Ok(x) = qr.solve_least_squares(&b) {
            let ax = a.matvec(&x).unwrap();
            let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
            let atr = a.transpose().matvec(&r).unwrap();
            for v in atr {
                assert!(v.abs() < 1e-6);
            }
        }
    });
}

#[test]
fn normalizer_round_trip() {
    forall!(cases = 64, (m in matrix(4, 9, -10.0, 10.0)) => {
        let norm = Normalizer::fit(&m);
        let z = norm.apply(&m).unwrap();
        let back = norm.invert(&z).unwrap();
        assert!(back.approx_eq(&m, 1e-9 * m.max_abs().max(1.0)));
    });
}

#[test]
fn ols_never_worse_than_mean_model() {
    forall!(cases = 64, (x in matrix(2, 12, -10.0, 10.0),
                         f in matrix(1, 12, -10.0, 10.0)) => {
        let fit = lstsq::ols_with_intercept(&x, &f).unwrap();
        // The intercept-only model (predict the mean) is in the OLS model
        // class, so OLS training RMS cannot exceed the response std-dev.
        let mu: f64 = f.row(0).iter().sum::<f64>() / 12.0;
        let std = (f.row(0).iter().map(|&v| (v - mu) * (v - mu)).sum::<f64>() / 12.0).sqrt();
        assert!(fit.rms_residual <= std + 1e-8);
    });
}

#[test]
fn ridge_monotone_coefficient_norm() {
    forall!(cases = 64, (x in matrix(2, 10, -10.0, 10.0),
                         f in matrix(1, 10, -10.0, 10.0)) => {
        // Coefficient norm is non-increasing in the ridge strength.
        let f0 = lstsq::ridge_with_intercept(&x, &f, 0.0).unwrap();
        let f1 = lstsq::ridge_with_intercept(&x, &f, 1.0).unwrap();
        let f2 = lstsq::ridge_with_intercept(&x, &f, 100.0).unwrap();
        let n0 = f0.coefficients.frobenius_norm();
        let n1 = f1.coefficients.frobenius_norm();
        let n2 = f2.coefficients.frobenius_norm();
        assert!(n1 <= n0 + 1e-9);
        assert!(n2 <= n1 + 1e-9);
    });
}
