use crate::{LinalgError, Matrix};

/// Dense Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite
/// matrix.
///
/// Used to solve the normal equations of the OLS refit
/// (`α = F X̄ᵀ (X̄ X̄ᵀ)⁻¹` in the paper) and as a reference implementation for
/// the sparse envelope Cholesky in `voltsense-sparse`.
///
/// # Example
///
/// ```
/// use voltsense_linalg::{Matrix, decomp::Cholesky};
///
/// # fn main() -> Result<(), voltsense_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let chol = Cholesky::new(&a)?;
/// let x = chol.solve(&[8.0, 7.0])?;
/// // A x = [8, 7] => x = [1.25, 1.5]
/// assert!((x[0] - 1.25).abs() < 1e-12);
/// assert!((x[1] - 1.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor, stored dense (upper part is zero).
    l: Matrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; the strict upper triangle is
    /// assumed to mirror it.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::InvalidDimensions`] if `a` is not square.
    /// * [`LinalgError::NotPositiveDefinite`] if a pivot is `<= 0` (within a
    ///   scaled tolerance), which also catches symmetric indefinite input.
    /// * [`LinalgError::NonFinite`] if `a` contains NaN or infinity.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::InvalidDimensions {
                what: format!("Cholesky requires square matrix, got {}x{}", a.rows(), a.cols()),
            });
        }
        if !a.is_finite() {
            return Err(LinalgError::NonFinite { what: "Cholesky input" });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        // Tolerance scaled to the matrix magnitude to detect "numerically
        // indefinite" input rather than failing with NaN later.
        let tol = a.max_abs() * 1e-14;
        for j in 0..n {
            // Diagonal entry.
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= tol.max(f64::MIN_POSITIVE) {
                return Err(LinalgError::NotPositiveDefinite { index: j, pivot: d });
            }
            let dsqrt = d.sqrt();
            l[(j, j)] = dsqrt;
            // Column below the diagonal.
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / dsqrt;
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `A x = b` for a single right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Forward substitution: L y = b.
        let mut y = b.to_vec();
        for i in 0..n {
            for k in 0..i {
                y[i] -= self.l[(i, k)] * y[k];
            }
            y[i] /= self.l[(i, i)];
        }
        // Back substitution: Lᵀ x = y.
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                y[i] -= self.l[(k, i)] * y[k];
            }
            y[i] /= self.l[(i, i)];
        }
        Ok(y)
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.rows() != self.dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky solve_matrix",
                left: (n, n),
                right: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        let mut rhs = Vec::with_capacity(n);
        for j in 0..b.cols() {
            b.col_into(j, &mut rhs);
            let x = self.solve(&rhs)?;
            out.set_col(j, &x);
        }
        Ok(out)
    }

    /// Log-determinant of `A` (`2 Σ log L_ii`), useful for statistical
    /// diagnostics.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = Bᵀ B + I for a random-ish B is SPD; use a fixed known SPD matrix.
        Matrix::from_rows(&[
            &[6.0, 2.0, 1.0],
            &[2.0, 5.0, 2.0],
            &[1.0, 2.0, 4.0],
        ])
        .unwrap()
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd3();
        let chol = Cholesky::new(&a).unwrap();
        let l = chol.l();
        let llt = l.matmul(&l.transpose()).unwrap();
        assert!(llt.approx_eq(&a, 1e-12));
    }

    #[test]
    fn solve_residual_small() {
        let a = spd3();
        let chol = Cholesky::new(&a).unwrap();
        let b = [1.0, 2.0, 3.0];
        let x = chol.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (ai, bi) in ax.iter().zip(&b) {
            assert!((ai - bi).abs() < 1e-12);
        }
    }

    #[test]
    fn solve_matrix_multiple_rhs() {
        let a = spd3();
        let chol = Cholesky::new(&a).unwrap();
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[0.0, 0.0]]).unwrap();
        let x = chol.solve_matrix(&b).unwrap();
        let ax = a.matmul(&x).unwrap();
        assert!(ax.approx_eq(&b, 1e-12));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::InvalidDimensions { .. })
        ));
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_nan() {
        let mut a = spd3();
        a[(0, 0)] = f64::NAN;
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NonFinite { .. })
        ));
    }

    #[test]
    fn solve_wrong_len() {
        let chol = Cholesky::new(&spd3()).unwrap();
        assert!(chol.solve(&[1.0]).is_err());
    }

    #[test]
    fn log_det_identity_is_zero() {
        let chol = Cholesky::new(&Matrix::identity(5)).unwrap();
        assert!(chol.log_det().abs() < 1e-14);
    }

    #[test]
    fn log_det_diagonal() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 8.0]]).unwrap();
        let chol = Cholesky::new(&a).unwrap();
        assert!((chol.log_det() - 16.0_f64.ln()).abs() < 1e-12);
    }
}
