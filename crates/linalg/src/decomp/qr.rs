use crate::{LinalgError, Matrix};

/// Householder QR factorization `A = Q R` of an `m x n` matrix with `m >= n`.
///
/// `Q` is represented implicitly by its Householder reflectors; the public
/// API exposes `Qᵀ b` application and least-squares solves, which is all the
/// workspace needs. QR is the robust fallback when the Gram matrix used by
/// [`crate::decomp::Cholesky`]-based OLS is ill-conditioned (nearly collinear
/// sensor candidates).
///
/// # Example
///
/// ```
/// use voltsense_linalg::{Matrix, decomp::Qr};
///
/// # fn main() -> Result<(), voltsense_linalg::LinalgError> {
/// // Overdetermined system: fit x in A x ≈ b.
/// let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]])?;
/// let qr = Qr::new(&a)?;
/// let x = qr.solve_least_squares(&[6.0, 0.0, 0.0])?;
/// assert_eq!(x.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Qr {
    /// Packed factorization: R in the upper triangle, Householder vectors
    /// (below-diagonal parts) in the lower triangle.
    packed: Matrix,
    /// Leading coefficients of the Householder vectors (the implicit 1.0 is
    /// replaced by `v0[k]` so the full vector can be reconstructed).
    v0: Vec<f64>,
    /// Scalar `tau = 2 / (vᵀv)` per reflector; zero for a skipped (already
    /// zero) column.
    tau: Vec<f64>,
    m: usize,
    n: usize,
}

impl Qr {
    /// Factorizes `a` (`m x n`, `m >= n`).
    ///
    /// # Errors
    ///
    /// * [`LinalgError::InvalidDimensions`] if `m < n` or `a` is empty.
    /// * [`LinalgError::NonFinite`] if `a` contains NaN or infinity.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        let (m, n) = a.shape();
        if m < n || n == 0 {
            return Err(LinalgError::InvalidDimensions {
                what: format!("QR requires m >= n >= 1, got {m}x{n}"),
            });
        }
        if !a.is_finite() {
            return Err(LinalgError::NonFinite { what: "QR input" });
        }
        let mut r = a.clone();
        let mut v0 = vec![0.0; n];
        let mut tau = vec![0.0; n];
        for k in 0..n {
            // Build the Householder reflector for column k.
            let mut norm_sq = 0.0;
            for i in k..m {
                norm_sq += r[(i, k)] * r[(i, k)];
            }
            let norm = norm_sq.sqrt();
            if norm == 0.0 {
                // Column already zero below (and at) the diagonal; skip.
                v0[k] = 0.0;
                tau[k] = 0.0;
                continue;
            }
            let alpha = if r[(k, k)] >= 0.0 { -norm } else { norm };
            let vk0 = r[(k, k)] - alpha;
            // vᵀv = 2 norm (norm + |a_kk|); compute directly for stability.
            let mut vtv = vk0 * vk0;
            for i in (k + 1)..m {
                vtv += r[(i, k)] * r[(i, k)];
            }
            if vtv == 0.0 {
                v0[k] = 0.0;
                tau[k] = 0.0;
                r[(k, k)] = alpha;
                continue;
            }
            let t = 2.0 / vtv;
            // Apply reflector to the trailing columns: A -= t v (vᵀ A).
            for j in (k + 1)..n {
                let mut s = vk0 * r[(k, j)];
                for i in (k + 1)..m {
                    s += r[(i, k)] * r[(i, j)];
                }
                let ts = t * s;
                r[(k, j)] -= ts * vk0;
                for i in (k + 1)..m {
                    let vik = r[(i, k)];
                    r[(i, j)] -= ts * vik;
                }
            }
            // Store R's diagonal entry and the reflector.
            r[(k, k)] = alpha;
            v0[k] = vk0;
            tau[k] = t;
        }
        Ok(Qr {
            packed: r,
            v0,
            tau,
            m,
            n,
        })
    }

    /// Number of rows of the factored matrix.
    pub fn num_rows(&self) -> usize {
        self.m
    }

    /// Number of columns of the factored matrix.
    pub fn num_cols(&self) -> usize {
        self.n
    }

    /// The upper-triangular factor `R` (`n x n`).
    pub fn r(&self) -> Matrix {
        let mut r = Matrix::zeros(self.n, self.n);
        for i in 0..self.n {
            for j in i..self.n {
                r[(i, j)] = self.packed[(i, j)];
            }
        }
        r
    }

    /// Applies `Qᵀ` to a length-`m` vector, in place.
    fn apply_qt(&self, b: &mut [f64]) {
        for k in 0..self.n {
            let t = self.tau[k];
            if t == 0.0 {
                continue;
            }
            let mut s = self.v0[k] * b[k];
            for i in (k + 1)..self.m {
                s += self.packed[(i, k)] * b[i];
            }
            let ts = t * s;
            b[k] -= ts * self.v0[k];
            for i in (k + 1)..self.m {
                b[i] -= ts * self.packed[(i, k)];
            }
        }
    }

    /// Solves the least-squares problem `min_x ‖A x − b‖₂`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::ShapeMismatch`] if `b.len() != m`.
    /// * [`LinalgError::Singular`] if `R` has a (numerically) zero diagonal
    ///   entry, i.e. `A` is rank-deficient.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if b.len() != self.m {
            return Err(LinalgError::ShapeMismatch {
                op: "qr solve",
                left: (self.m, self.n),
                right: (b.len(), 1),
            });
        }
        let mut y = b.to_vec();
        self.apply_qt(&mut y);
        // Back substitution on the leading n x n triangle.
        let scale = self.packed.max_abs().max(1.0);
        let mut x = vec![0.0; self.n];
        for i in (0..self.n).rev() {
            let mut s = y[i];
            for j in (i + 1)..self.n {
                s -= self.packed[(i, j)] * x[j];
            }
            let d = self.packed[(i, i)];
            if d.abs() <= scale * 1e-13 {
                return Err(LinalgError::Singular { index: i });
            }
            x[i] = s / d;
        }
        Ok(x)
    }

    /// Solves `min ‖A X − B‖_F` column by column.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Qr::solve_least_squares`], with shape checked
    /// against `B.rows()`.
    pub fn solve_least_squares_matrix(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        if b.rows() != self.m {
            return Err(LinalgError::ShapeMismatch {
                op: "qr solve_matrix",
                left: (self.m, self.n),
                right: b.shape(),
            });
        }
        let mut out = Matrix::zeros(self.n, b.cols());
        let mut rhs = Vec::with_capacity(b.rows());
        for j in 0..b.cols() {
            b.col_into(j, &mut rhs);
            let x = self.solve_least_squares(&rhs)?;
            out.set_col(j, &x);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r_is_upper_triangular() {
        let a = Matrix::from_rows(&[
            &[1.0, 2.0],
            &[3.0, 4.0],
            &[5.0, 6.0],
        ])
        .unwrap();
        let qr = Qr::new(&a).unwrap();
        let r = qr.r();
        assert_eq!(r.shape(), (2, 2));
        assert_eq!(r[(1, 0)], 0.0);
    }

    #[test]
    fn square_solve_exact() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let qr = Qr::new(&a).unwrap();
        // A [1, 2]ᵀ = [4, 7]ᵀ
        let x = qr.solve_least_squares(&[4.0, 7.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn least_squares_matches_normal_equations() {
        let a = Matrix::from_rows(&[
            &[1.0, 0.0],
            &[1.0, 1.0],
            &[1.0, 2.0],
            &[1.0, 3.0],
        ])
        .unwrap();
        let b = [1.0, 2.9, 5.1, 7.0];
        let qr = Qr::new(&a).unwrap();
        let x = qr.solve_least_squares(&b).unwrap();
        // Normal equations: (AᵀA) x = Aᵀ b.
        let at = a.transpose();
        let ata = at.matmul(&a).unwrap();
        let atb = at.matvec(&b).unwrap();
        let chol = crate::decomp::Cholesky::new(&ata).unwrap();
        let x_ne = chol.solve(&atb).unwrap();
        for (xi, xn) in x.iter().zip(&x_ne) {
            assert!((xi - xn).abs() < 1e-10, "{xi} vs {xn}");
        }
    }

    #[test]
    fn residual_orthogonal_to_columns() {
        let a = Matrix::from_rows(&[
            &[1.0, 2.0],
            &[0.5, -1.0],
            &[3.0, 0.25],
            &[-2.0, 1.5],
        ])
        .unwrap();
        let b = [1.0, -2.0, 0.5, 4.0];
        let qr = Qr::new(&a).unwrap();
        let x = qr.solve_least_squares(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        let resid: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
        // Residual must be orthogonal to the column space: Aᵀ r = 0.
        let atr = a.transpose().matvec(&resid).unwrap();
        for v in atr {
            assert!(v.abs() < 1e-12, "residual not orthogonal: {v}");
        }
    }

    #[test]
    fn rejects_underdetermined() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Qr::new(&a),
            Err(LinalgError::InvalidDimensions { .. })
        ));
    }

    #[test]
    fn detects_rank_deficiency() {
        // Second column is a multiple of the first.
        let a = Matrix::from_rows(&[
            &[1.0, 2.0],
            &[2.0, 4.0],
            &[3.0, 6.0],
        ])
        .unwrap();
        let qr = Qr::new(&a).unwrap();
        assert!(matches!(
            qr.solve_least_squares(&[1.0, 2.0, 3.0]),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn rejects_nan() {
        let a = Matrix::from_rows(&[&[f64::NAN], &[1.0]]).unwrap();
        assert!(matches!(Qr::new(&a), Err(LinalgError::NonFinite { .. })));
    }

    #[test]
    fn solve_matrix_columns_independent() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0], &[0.0, 0.0]]).unwrap();
        let b = Matrix::from_rows(&[&[1.0, 3.0], &[4.0, 2.0], &[0.0, 0.0]]).unwrap();
        let qr = Qr::new(&a).unwrap();
        let x = qr.solve_least_squares_matrix(&b).unwrap();
        assert!((x[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((x[(1, 0)] - 2.0).abs() < 1e-12);
        assert!((x[(0, 1)] - 3.0).abs() < 1e-12);
        assert!((x[(1, 1)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_column_handled() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 1.0], &[0.0, 1.0]]).unwrap();
        let qr = Qr::new(&a).unwrap();
        // First column all-zero => rank deficient; solve should error, not panic.
        assert!(qr.solve_least_squares(&[1.0, 1.0, 1.0]).is_err());
    }
}
