use crate::{LinalgError, Matrix};

/// Eigendecomposition of a symmetric matrix by the cyclic Jacobi method.
///
/// Jacobi rotations converge quadratically and retain full accuracy on the
/// small/medium symmetric matrices this workspace diagnoses (sensor Gram
/// matrices, covariance spectra); no attempt is made at large-scale
/// performance.
///
/// # Example
///
/// ```
/// use voltsense_linalg::{Matrix, decomp::SymmetricEigen};
///
/// # fn main() -> Result<(), voltsense_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]])?;
/// let eig = SymmetricEigen::new(&a)?;
/// // Eigenvalues of [[2,1],[1,2]] are 1 and 3 (ascending order).
/// assert!((eig.eigenvalues[0] - 1.0).abs() < 1e-12);
/// assert!((eig.eigenvalues[1] - 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues in ascending order.
    pub eigenvalues: Vec<f64>,
    /// Orthonormal eigenvectors, one per column, matching
    /// `eigenvalues` order.
    pub eigenvectors: Matrix,
}

impl SymmetricEigen {
    /// Maximum Jacobi sweeps before declaring failure (quadratic
    /// convergence makes ~15 sweeps ample for any practical size).
    const MAX_SWEEPS: usize = 50;

    /// Computes the decomposition. Only the lower triangle of `a` is read.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::InvalidDimensions`] if `a` is not square or empty.
    /// * [`LinalgError::NonFinite`] if `a` contains NaN or infinity.
    /// * [`LinalgError::Singular`] if the sweep limit is exhausted before
    ///   the off-diagonal mass vanishes (does not occur for finite input;
    ///   kept as a defensive bound).
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() || a.rows() == 0 {
            return Err(LinalgError::InvalidDimensions {
                what: format!(
                    "symmetric eigen requires non-empty square matrix, got {}x{}",
                    a.rows(),
                    a.cols()
                ),
            });
        }
        if !a.is_finite() {
            return Err(LinalgError::NonFinite {
                what: "symmetric eigen input",
            });
        }
        let n = a.rows();
        // Symmetrize from the lower triangle.
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                m[(i, j)] = a[(i, j)];
                m[(j, i)] = a[(i, j)];
            }
        }
        let mut v = Matrix::identity(n);
        let tol = 1e-14 * m.max_abs().max(f64::MIN_POSITIVE);

        for _sweep in 0..Self::MAX_SWEEPS {
            let mut off = 0.0_f64;
            for i in 0..n {
                for j in (i + 1)..n {
                    off = off.max(m[(i, j)].abs());
                }
            }
            if off <= tol {
                // Sorted output.
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by(|&p, &q| {
                    m[(p, p)].partial_cmp(&m[(q, q)]).expect("finite eigenvalues")
                });
                let eigenvalues: Vec<f64> = order.iter().map(|&p| m[(p, p)]).collect();
                let mut eigenvectors = Matrix::zeros(n, n);
                for (new_col, &old_col) in order.iter().enumerate() {
                    for r in 0..n {
                        eigenvectors[(r, new_col)] = v[(r, old_col)];
                    }
                }
                return Ok(SymmetricEigen {
                    eigenvalues,
                    eigenvectors,
                });
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = m[(p, q)];
                    if apq.abs() <= tol {
                        continue;
                    }
                    // Jacobi rotation annihilating m[p][q].
                    let theta = (m[(q, q)] - m[(p, p)]) / (2.0 * apq);
                    let t = if theta >= 0.0 {
                        1.0 / (theta + (1.0 + theta * theta).sqrt())
                    } else {
                        -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;
                    // Apply the rotation on both sides: M ← JᵀMJ.
                    for k in 0..n {
                        let mkp = m[(k, p)];
                        let mkq = m[(k, q)];
                        m[(k, p)] = c * mkp - s * mkq;
                        m[(k, q)] = s * mkp + c * mkq;
                    }
                    for k in 0..n {
                        let mpk = m[(p, k)];
                        let mqk = m[(q, k)];
                        m[(p, k)] = c * mpk - s * mqk;
                        m[(q, k)] = s * mpk + c * mqk;
                    }
                    // Accumulate eigenvectors: V ← VJ.
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }
        Err(LinalgError::Singular { index: 0 })
    }

    /// Spectral condition number `λ_max / λ_min` of a symmetric
    /// positive-definite matrix; infinite if the smallest eigenvalue is
    /// non-positive.
    pub fn condition_number(&self) -> f64 {
        let min = *self.eigenvalues.first().expect("non-empty spectrum");
        let max = *self.eigenvalues.last().expect("non-empty spectrum");
        if min <= 0.0 {
            f64::INFINITY
        } else {
            max / min
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym3() -> Matrix {
        Matrix::from_rows(&[
            &[4.0, 1.0, -2.0],
            &[1.0, 3.0, 0.5],
            &[-2.0, 0.5, 5.0],
        ])
        .unwrap()
    }

    #[test]
    fn reconstruction() {
        let a = sym3();
        let eig = SymmetricEigen::new(&a).unwrap();
        // A = V Λ Vᵀ
        let n = 3;
        let mut lambda = Matrix::zeros(n, n);
        for i in 0..n {
            lambda[(i, i)] = eig.eigenvalues[i];
        }
        let recon = eig
            .eigenvectors
            .matmul(&lambda)
            .unwrap()
            .matmul(&eig.eigenvectors.transpose())
            .unwrap();
        assert!(recon.approx_eq(&a, 1e-10));
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let eig = SymmetricEigen::new(&sym3()).unwrap();
        let vtv = eig
            .eigenvectors
            .transpose()
            .matmul(&eig.eigenvectors)
            .unwrap();
        assert!(vtv.approx_eq(&Matrix::identity(3), 1e-12));
    }

    #[test]
    fn eigenvalues_ascending_and_match_trace() {
        let a = sym3();
        let eig = SymmetricEigen::new(&a).unwrap();
        assert!(eig.eigenvalues.windows(2).all(|w| w[0] <= w[1]));
        let trace: f64 = (0..3).map(|i| a[(i, i)]).sum();
        let sum: f64 = eig.eigenvalues.iter().sum();
        assert!((trace - sum).abs() < 1e-10);
    }

    #[test]
    fn known_2x2() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let eig = SymmetricEigen::new(&a).unwrap();
        assert!((eig.eigenvalues[0] - 1.0).abs() < 1e-12);
        assert!((eig.eigenvalues[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn diagonal_matrix_is_immediate() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, -1.0]]).unwrap();
        let eig = SymmetricEigen::new(&a).unwrap();
        assert_eq!(eig.eigenvalues, vec![-1.0, 3.0]);
    }

    #[test]
    fn condition_number_spd_and_indefinite() {
        let spd = Matrix::from_rows(&[&[4.0, 0.0], &[0.0, 1.0]]).unwrap();
        let eig = SymmetricEigen::new(&spd).unwrap();
        assert!((eig.condition_number() - 4.0).abs() < 1e-12);
        let indef = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        let eig = SymmetricEigen::new(&indef).unwrap();
        assert!(eig.condition_number().is_infinite());
    }

    #[test]
    fn agrees_with_cholesky_logdet() {
        // For SPD input, Σ ln λ_i = log det = Cholesky log_det.
        let a = sym3();
        let eig = SymmetricEigen::new(&a).unwrap();
        let chol = crate::decomp::Cholesky::new(&a).unwrap();
        let sum_ln: f64 = eig.eigenvalues.iter().map(|l| l.ln()).sum();
        assert!((sum_ln - chol.log_det()).abs() < 1e-9);
    }

    #[test]
    fn bad_inputs_rejected() {
        assert!(SymmetricEigen::new(&Matrix::zeros(2, 3)).is_err());
        assert!(SymmetricEigen::new(&Matrix::zeros(0, 0)).is_err());
        let mut nan = sym3();
        nan[(0, 0)] = f64::NAN;
        assert!(SymmetricEigen::new(&nan).is_err());
    }

    #[test]
    fn only_lower_triangle_is_read() {
        let mut a = sym3();
        a[(0, 2)] = 999.0; // poison the upper triangle
        let eig_poisoned = SymmetricEigen::new(&a).unwrap();
        let eig_clean = SymmetricEigen::new(&sym3()).unwrap();
        for (p, c) in eig_poisoned
            .eigenvalues
            .iter()
            .zip(&eig_clean.eigenvalues)
        {
            assert!((p - c).abs() < 1e-12);
        }
    }
}
