use crate::{LinalgError, Matrix};

/// Partially-pivoted LU factorization `P A = L U` of a square matrix.
///
/// General-purpose square solver; the power-grid DC operating point uses the
/// sparse path in `voltsense-sparse`, but small dense systems (pad companion
/// models, unit tests of the sparse solvers) go through `Lu`.
///
/// # Example
///
/// ```
/// use voltsense_linalg::{Matrix, decomp::Lu};
///
/// # fn main() -> Result<(), voltsense_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[0.0, 2.0], &[1.0, 1.0]])?;
/// let lu = Lu::new(&a)?;
/// let x = lu.solve(&[2.0, 2.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed LU factors: U in the upper triangle (inclusive of the
    /// diagonal), the unit-lower-triangular L below it.
    packed: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation, for determinants.
    perm_sign: f64,
}

impl Lu {
    /// Factorizes a square matrix with partial pivoting.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::InvalidDimensions`] if `a` is not square or empty.
    /// * [`LinalgError::Singular`] if no usable pivot exists in a column.
    /// * [`LinalgError::NonFinite`] if `a` contains NaN or infinity.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() || a.rows() == 0 {
            return Err(LinalgError::InvalidDimensions {
                what: format!("LU requires non-empty square matrix, got {}x{}", a.rows(), a.cols()),
            });
        }
        if !a.is_finite() {
            return Err(LinalgError::NonFinite { what: "LU input" });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        let scale = a.max_abs().max(1.0);
        for k in 0..n {
            // Find the pivot row.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val <= scale * 1e-14 {
                return Err(LinalgError::Singular { index: k });
            }
            if pivot_row != k {
                // Swap the full rows and the permutation record.
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let ukj = lu[(k, j)];
                    lu[(i, j)] -= factor * ukj;
                }
            }
        }
        Ok(Lu {
            packed: lu,
            perm,
            perm_sign: sign,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.packed.rows()
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Apply the permutation, then forward substitution (unit lower).
        let mut y: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            for k in 0..i {
                y[i] -= self.packed[(i, k)] * y[k];
            }
        }
        // Back substitution.
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                y[i] -= self.packed[(i, k)] * y[k];
            }
            y[i] /= self.packed[(i, i)];
        }
        Ok(y)
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.perm_sign;
        for i in 0..self.dim() {
            d *= self.packed[(i, i)];
        }
        d
    }

    /// Inverse of the original matrix, computed column by column.
    ///
    /// # Errors
    ///
    /// Propagates solve errors (shape errors cannot occur here).
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            inv.set_col(j, &col);
            e[j] = 0.0;
        }
        Ok(inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[
            &[2.0, 1.0, 1.0],
            &[4.0, -6.0, 0.0],
            &[-2.0, 7.0, 2.0],
        ])
        .unwrap()
    }

    #[test]
    fn solve_known_system() {
        let a = sample();
        let lu = Lu::new(&a).unwrap();
        let x_true = [1.0, -2.0, 3.0];
        let b = a.matvec(&x_true).unwrap();
        let x = lu.solve(&b).unwrap();
        for (xi, xt) in x.iter().zip(&x_true) {
            assert!((xi - xt).abs() < 1e-12);
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = Lu::new(&a).unwrap();
        let x = lu.solve(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 5.0).abs() < 1e-14);
        assert!((x[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn det_known() {
        // det = 2*(-6*2 - 0*7) - 1*(4*2 - 0*(-2)) + 1*(4*7 - (-6)(-2))
        //     = 2*(-12) - 8 + (28 - 12) = -24 - 8 + 16 = -16
        let lu = Lu::new(&sample()).unwrap();
        assert!((lu.det() - (-16.0)).abs() < 1e-10);
    }

    #[test]
    fn det_identity() {
        let lu = Lu::new(&Matrix::identity(4)).unwrap();
        assert!((lu.det() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn inverse_round_trip() {
        let a = sample();
        let lu = Lu::new(&a).unwrap();
        let inv = lu.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(Lu::new(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn rejects_non_square_and_empty() {
        assert!(Lu::new(&Matrix::zeros(2, 3)).is_err());
        assert!(Lu::new(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn solve_wrong_len() {
        let lu = Lu::new(&Matrix::identity(3)).unwrap();
        assert!(lu.solve(&[1.0]).is_err());
    }
}
