//! Dense matrix factorizations.
//!
//! * [`Cholesky`] — for symmetric positive-definite systems (the normal
//!   equations of the OLS refit, Gram matrices of selected sensors).
//! * [`Qr`] — Householder QR, the numerically robust path for least squares
//!   when the Gram matrix is ill-conditioned.
//! * [`Lu`] — partially-pivoted LU for general square systems.
//! * [`SymmetricEigen`] — Jacobi eigendecomposition for spectral
//!   diagnostics (sensor-Gram conditioning, covariance spectra).

mod cholesky;
mod eigen;
mod lu;
mod qr;

pub use cholesky::Cholesky;
pub use eigen::SymmetricEigen;
pub use lu::Lu;
pub use qr::Qr;
