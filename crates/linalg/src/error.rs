use std::error::Error;
use std::fmt;

/// Error type for every fallible operation in this crate.
///
/// The variants carry enough context (dimensions, indices) to diagnose the
/// failing call without re-running it under a debugger.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Two operands had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Description of the operation that failed (e.g. `"matmul"`).
        op: &'static str,
        /// Shape of the left operand as `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        right: (usize, usize),
    },
    /// A dimension that must be non-zero was zero, or rows had ragged lengths.
    InvalidDimensions {
        /// Description of the offending construction.
        what: String,
    },
    /// A matrix expected to be symmetric positive definite was not:
    /// the Cholesky pivot at `index` was non-positive.
    NotPositiveDefinite {
        /// Row/column index of the failing pivot.
        index: usize,
        /// Value of the failing pivot.
        pivot: f64,
    },
    /// A matrix was singular (or numerically rank-deficient) at `index`.
    Singular {
        /// Pivot index at which singularity was detected.
        index: usize,
    },
    /// An input contained a NaN or infinite entry.
    NonFinite {
        /// Description of the input that contained the non-finite value.
        what: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, left, right } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::InvalidDimensions { what } => {
                write!(f, "invalid dimensions: {what}")
            }
            LinalgError::NotPositiveDefinite { index, pivot } => write!(
                f,
                "matrix is not positive definite: pivot {pivot:.3e} at index {index}"
            ),
            LinalgError::Singular { index } => {
                write!(f, "matrix is singular at pivot {index}")
            }
            LinalgError::NonFinite { what } => {
                write!(f, "non-finite value encountered in {what}")
            }
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = LinalgError::ShapeMismatch {
            op: "matmul",
            left: (2, 3),
            right: (4, 5),
        };
        let msg = err.to_string();
        assert!(msg.contains("matmul"));
        assert!(msg.contains("2x3"));
        assert!(msg.contains("4x5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }

    #[test]
    fn not_positive_definite_reports_pivot() {
        let err = LinalgError::NotPositiveDefinite {
            index: 3,
            pivot: -1.5,
        };
        assert!(err.to_string().contains("index 3"));
    }
}
