//! Dense linear algebra for the voltsense workspace.
//!
//! The Rust statistics ecosystem is thin, and the DAC'15 methodology this
//! workspace reproduces needs only a compact, well-tested set of kernels:
//!
//! * [`Matrix`] — a row-major dense matrix with the usual arithmetic,
//!   slicing and reduction operations.
//! * [`decomp`] — Cholesky, Householder QR and partially-pivoted LU
//!   factorizations with solve routines.
//! * [`lstsq`] — ordinary and ridge least squares, with or without an
//!   intercept, built on the factorizations.
//! * [`stats`] — per-row means/standard deviations, the [`stats::Normalizer`]
//!   used to form the paper's `Z`/`G` matrices, and correlation helpers.
//! * [`vec_ops`] — small slice kernels (dot, norms, axpy) shared by the
//!   iterative solvers in `voltsense-sparse` and `voltsense-grouplasso`.
//!
//! # Example
//!
//! ```
//! use voltsense_linalg::{Matrix, lstsq};
//!
//! # fn main() -> Result<(), voltsense_linalg::LinalgError> {
//! // Fit y = 2 x + 1 from four noiseless observations.
//! let x = Matrix::from_rows(&[&[0.0, 1.0, 2.0, 3.0]])?;
//! let y = Matrix::from_rows(&[&[1.0, 3.0, 5.0, 7.0]])?;
//! let fit = lstsq::ols_with_intercept(&x, &y)?;
//! assert!((fit.coefficients[(0, 0)] - 2.0).abs() < 1e-10);
//! assert!((fit.intercept[0] - 1.0).abs() < 1e-10);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decomp;
mod error;
pub mod lstsq;
mod matrix;
pub mod stats;
pub mod vec_ops;

pub use error::LinalgError;
pub use matrix::Matrix;
