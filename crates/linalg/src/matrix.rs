use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};
use std::sync::Mutex;

use voltsense_parallel as parallel;

use crate::LinalgError;

/// k-dimension block size for the cache-blocked matmul: a block of `rhs`
/// rows stays resident in cache while a row partition sweeps over it.
const MATMUL_K_BLOCK: usize = 64;

/// Minimum fused multiply-adds a parallel task must amortize before a
/// compute-bound kernel fans out; below this, dispatch overhead dominates.
const PAR_TASK_FLOPS: usize = 1 << 18;

/// Minimum elements moved per parallel task for memory-bound kernels
/// (transpose, row gathers).
const PAR_TASK_ELEMS: usize = 1 << 16;

/// A dense, row-major, `f64` matrix.
///
/// `Matrix` is the workhorse container of the workspace: training data
/// (`X`, `F`, `Z`, `G` in the paper), model coefficients (`alpha`, `beta`)
/// and intermediate products are all `Matrix` values.
///
/// # Example
///
/// ```
/// use voltsense_linalg::Matrix;
///
/// # fn main() -> Result<(), voltsense_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c, a);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// Zero-sized matrices (`rows == 0` or `cols == 0`) are permitted; they
    /// behave as empty operands where that makes sense.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix with every entry set to `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a slice of row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidDimensions`] if the rows have unequal
    /// lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != ncols {
                return Err(LinalgError::InvalidDimensions {
                    what: format!(
                        "row {i} has length {}, expected {ncols}",
                        row.len()
                    ),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidDimensions`] if
    /// `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidDimensions {
                what: format!(
                    "flat data has length {}, expected {rows}*{cols}={}",
                    data.len(),
                    rows * cols
                ),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Builds a single-column matrix from a slice.
    pub fn column_vector(values: &[f64]) -> Self {
        Matrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Builds a single-row matrix from a slice.
    pub fn row_vector(values: &[f64]) -> Self {
        Matrix {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` if the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the row-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Immutable view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new `Vec`.
    ///
    /// Hot loops should prefer [`Matrix::col_iter`] or
    /// [`Matrix::col_into`], which do not allocate per call.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        self.col_iter(j).collect()
    }

    /// Iterates over column `j` (a strided walk of the row-major storage)
    /// without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col_iter(&self, j: usize) -> impl Iterator<Item = f64> + '_ {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        self.data
            .iter()
            .skip(j)
            .step_by(self.cols)
            .take(self.rows)
            .copied()
    }

    /// Copies column `j` into `buf`, replacing its contents. Lets hot
    /// loops reuse one buffer across columns instead of allocating a
    /// fresh `Vec` per call.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col_into(&self, j: usize, buf: &mut Vec<f64>) {
        buf.clear();
        buf.extend(self.col_iter(j));
    }

    /// Sets column `j` from a slice.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()` or `values.len() != self.rows()`.
    pub fn set_col(&mut self, j: usize, values: &[f64]) {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        assert_eq!(values.len(), self.rows, "column length mismatch");
        for (i, &v) in values.iter().enumerate() {
            self[(i, j)] = v;
        }
    }

    /// Returns a new matrix containing only the rows whose indices appear in
    /// `indices`, in the given order. Indices may repeat.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        // Validate up front so an out-of-bounds index panics identically
        // whether the gather below runs serially or fanned out.
        for &i in indices {
            assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        }
        let mut out = Matrix::zeros(indices.len(), self.cols);
        let min_rows = PAR_TASK_ELEMS.div_ceil(self.cols.max(1));
        parallel::for_each_row_block(&mut out.data, self.cols, min_rows, |first, block| {
            for (local, orow) in block.chunks_mut(self.cols).enumerate() {
                orow.copy_from_slice(self.row(indices[first + local]));
            }
        });
        out
    }

    /// Returns a new matrix containing only the listed columns, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_cols(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, indices.len());
        for i in 0..self.rows {
            for (c, &j) in indices.iter().enumerate() {
                out[(i, c)] = self[(i, j)];
            }
        }
        out
    }

    /// Returns the transpose.
    ///
    /// Partitioned over output rows (source columns); each output row is
    /// written by exactly one task, so the result is bit-identical at any
    /// thread count.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        let min_rows = PAR_TASK_ELEMS.div_ceil(self.rows.max(1));
        parallel::for_each_row_block(&mut out.data, self.rows, min_rows, |first, block| {
            for (local, orow) in block.chunks_mut(self.rows).enumerate() {
                let j = first + local;
                for (i, o) in orow.iter_mut().enumerate() {
                    *o = self.data[i * self.cols + j];
                }
            }
        });
        out
    }

    /// Matrix product `self * rhs`.
    ///
    /// Cache-blocked i-k-j: output rows are partitioned across tasks, and
    /// within each partition a [`MATMUL_K_BLOCK`]-row block of `rhs` is
    /// swept across every partition row while it is hot in cache. For each
    /// output entry the k-accumulation order stays strictly ascending, so
    /// blocking and row partitioning leave the result bit-identical to the
    /// naive serial i-k-j loop at any thread count.
    ///
    /// Zero `self` entries are *not* skipped: IEEE-754 requires `0 · NaN`
    /// and `0 · ∞` to contaminate the sum.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if
    /// `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out)?;
        Ok(out)
    }

    /// [`Matrix::matmul`] into a caller-provided output matrix (shape
    /// `self.rows x rhs.cols`), allocating nothing. The steady-state form
    /// for hot loops that multiply fixed shapes repeatedly; pinned
    /// allocation-free by the `alloc_gate` tests.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.cols() != rhs.rows()`
    /// or `out` has the wrong shape.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) -> Result<(), LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        if out.shape() != (self.rows, rhs.cols) {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul_into",
                left: (self.rows, rhs.cols),
                right: out.shape(),
            });
        }
        out.data.fill(0.0);
        let n = rhs.cols;
        let min_rows = PAR_TASK_FLOPS.div_ceil((self.cols * n).max(1));
        parallel::for_each_row_block(&mut out.data, n, min_rows, |first, block| {
            for kb in (0..self.cols).step_by(MATMUL_K_BLOCK) {
                let kend = (kb + MATMUL_K_BLOCK).min(self.cols);
                for (local, orow) in block.chunks_mut(n).enumerate() {
                    let arow = self.row(first + local);
                    for k in kb..kend {
                        let aik = arow[k];
                        let rrow = rhs.row(k);
                        for (o, &r) in orow.iter_mut().zip(rrow) {
                            *o += aik * r;
                        }
                    }
                }
            }
        });
        Ok(())
    }

    /// Like [`Matrix::matmul`] but with the plain serial i-k-j loop —
    /// the oracle the property tests compare the blocked parallel kernel
    /// against, and a fallback for callers that must not touch the pool.
    #[doc(hidden)]
    pub fn matmul_serial(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                let rrow = rhs.row(k);
                let orow = out.row_mut(i);
                for (o, &r) in orow.iter_mut().zip(rrow) {
                    *o += aik * r;
                }
            }
        }
        Ok(out)
    }

    /// Computes `self * selfᵀ` (a symmetric `rows x rows` Gram matrix)
    /// without materializing the transpose.
    ///
    /// Only the upper triangle is computed; the lower is mirrored. In the
    /// parallel path task `c` owns the *strided* row set `c, c+P, c+2P, …`
    /// — upper-triangle row `i` holds `n - i` dots, so striding balances
    /// the shrinking rows across tasks where contiguous blocks would not.
    /// Each dot keeps its serial summation order, so the result is
    /// bit-identical at any thread count.
    pub fn gram(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.rows);
        self.gram_into(&mut out)
            .expect("gram output allocated with the right shape");
        out
    }

    /// [`Matrix::gram`] into a caller-provided `rows x rows` output matrix,
    /// allocating nothing on the serial path (the parallel path builds its
    /// per-row hand-off slots; hot loops that must stay allocation-free run
    /// it under one thread). Pinned by the `alloc_gate` tests.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `out` is not square with
    /// side `self.rows()`.
    pub fn gram_into(&self, out: &mut Matrix) -> Result<(), LinalgError> {
        let n = self.rows;
        if out.shape() != (n, n) {
            return Err(LinalgError::ShapeMismatch {
                op: "gram_into",
                left: (n, n),
                right: out.shape(),
            });
        }
        let total_flops = n * (n + 1) / 2 * self.cols;
        let parts = parallel::current_threads().min((total_flops / PAR_TASK_FLOPS).max(1));
        if parts <= 1 {
            for i in 0..n {
                for j in i..n {
                    let s: f64 = self
                        .row(i)
                        .iter()
                        .zip(self.row(j))
                        .map(|(a, b)| a * b)
                        .sum();
                    out[(i, j)] = s;
                    out[(j, i)] = s;
                }
            }
            return Ok(());
        }
        {
            let mut slots: Vec<Mutex<Option<&mut [f64]>>> = Vec::with_capacity(n);
            let mut rest = out.data.as_mut_slice();
            for _ in 0..n {
                let (head, tail) = rest.split_at_mut(n);
                slots.push(Mutex::new(Some(head)));
                rest = tail;
            }
            parallel::run(parts, |c| {
                for i in (c..n).step_by(parts) {
                    let row_out = slots[i]
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .take()
                        .expect("each gram row is owned by exactly one task");
                    let ri = self.row(i);
                    for j in i..n {
                        row_out[j] = ri.iter().zip(self.row(j)).map(|(a, b)| a * b).sum();
                    }
                }
            });
        }
        for i in 1..n {
            for j in 0..i {
                out[(i, j)] = out[(j, i)];
            }
        }
        Ok(())
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let mut out = vec![0.0; self.rows];
        self.matvec_into(v, &mut out)?;
        Ok(out)
    }

    /// [`Matrix::matvec`] into a caller-provided output slice of length
    /// `self.rows()`, allocating nothing. The steady-state form of the
    /// runtime `K×Q` prediction; pinned by the `alloc_gate` tests.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `v.len() != self.cols()`
    /// or `out.len() != self.rows()`.
    pub fn matvec_into(&self, v: &[f64], out: &mut [f64]) -> Result<(), LinalgError> {
        if v.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                left: self.shape(),
                right: (v.len(), 1),
            });
        }
        if out.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec_into",
                left: (self.rows, 1),
                right: (out.len(), 1),
            });
        }
        let min_rows = PAR_TASK_FLOPS.div_ceil(self.cols.max(1));
        parallel::for_each_row_block(out, 1, min_rows, |first, block| {
            for (local, o) in block.iter_mut().enumerate() {
                *o = self.row(first + local).iter().zip(v).map(|(a, b)| a * b).sum();
            }
        });
        Ok(())
    }

    /// Entry-wise map, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Multiplies every entry by `s` in place.
    pub fn scale_in_place(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Returns `self * s` as a new matrix.
    pub fn scaled(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// Frobenius norm: `sqrt(Σ a_ij²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute entry, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Smallest entry.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is empty.
    pub fn min(&self) -> f64 {
        assert!(!self.is_empty(), "min of empty matrix");
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest entry.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is empty.
    pub fn max(&self) -> f64 {
        assert!(!self.is_empty(), "max of empty matrix");
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// `true` if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// `true` if `self` and `other` have the same shape and agree entry-wise
    /// within absolute tolerance `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Horizontally concatenates `self` and `rhs` (`[self | rhs]`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the row counts differ.
    pub fn hstack(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.rows != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "hstack",
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, self.cols + rhs.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(rhs.row(i));
        }
        Ok(out)
    }

    /// Vertically concatenates `self` on top of `rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the column counts differ.
    pub fn vstack(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "vstack",
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&rhs.data);
        Ok(Matrix {
            rows: self.rows + rhs.rows,
            cols: self.cols,
            data,
        })
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for i in 0..show_rows {
            write!(f, "  [")?;
            let show_cols = self.cols.min(8);
            for j in 0..show_cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.4e}", self[(i, j)])?;
            }
            if self.cols > show_cols {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > show_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

macro_rules! elementwise_binop {
    ($trait:ident, $method:ident, $op:tt, $name:literal) => {
        impl $trait<&Matrix> for &Matrix {
            type Output = Matrix;

            /// # Panics
            ///
            /// Panics if the shapes differ.
            fn $method(self, rhs: &Matrix) -> Matrix {
                assert_eq!(
                    self.shape(),
                    rhs.shape(),
                    concat!("shape mismatch in ", $name)
                );
                Matrix {
                    rows: self.rows,
                    cols: self.cols,
                    data: self
                        .data
                        .iter()
                        .zip(&rhs.data)
                        .map(|(a, b)| a $op b)
                        .collect(),
                }
            }
        }
    };
}

elementwise_binop!(Add, add, +, "add");
elementwise_binop!(Sub, sub, -, "sub");

impl AddAssign<&Matrix> for Matrix {
    /// # Panics
    ///
    /// Panics if the shapes differ.
    fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "shape mismatch in add_assign");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl SubAssign<&Matrix> for Matrix {
    /// # Panics
    ///
    /// Panics if the shapes differ.
    fn sub_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "shape mismatch in sub_assign");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        self.scaled(s)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scaled(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_diag() {
        let m = Matrix::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_ragged_fails() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::InvalidDimensions { .. }));
    }

    #[test]
    fn from_vec_wrong_len_fails() {
        let err = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).unwrap_err();
        assert!(matches!(err, LinalgError::InvalidDimensions { .. }));
    }

    #[test]
    fn indexing_round_trip() {
        let mut m = sample();
        assert_eq!(m[(1, 2)], 6.0);
        m[(1, 2)] = 9.0;
        assert_eq!(m[(1, 2)], 9.0);
    }

    #[test]
    fn row_and_col_views() {
        let m = sample();
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_entries() {
        let t = sample().transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = sample();
        let i3 = Matrix::identity(3);
        assert_eq!(m.matmul(&i3).unwrap(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        let expected = Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap();
        assert!(c.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn matmul_shape_mismatch() {
        let m = sample();
        let err = m.matmul(&m).unwrap_err();
        assert!(matches!(err, LinalgError::ShapeMismatch { op: "matmul", .. }));
    }

    #[test]
    fn matmul_propagates_non_finite_through_zero_entries() {
        // IEEE-754: 0 · NaN = NaN and 0 · ∞ = NaN, so non-finite values in
        // `rhs` must contaminate the product even where `self` is zero. A
        // shortcut skipping zero lhs entries silently drops them.
        let a = Matrix::from_rows(&[&[0.0, 1.0]]).unwrap();
        let b = Matrix::from_rows(&[&[f64::NAN, f64::INFINITY], &[1.0, 2.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert!(c[(0, 0)].is_nan(), "0·NaN must propagate, got {}", c[(0, 0)]);
        assert!(c[(0, 1)].is_nan(), "0·∞ must propagate, got {}", c[(0, 1)]);
        let s = a.matmul_serial(&b).unwrap();
        assert!(s[(0, 0)].is_nan() && s[(0, 1)].is_nan());
    }

    #[test]
    fn col_iter_and_col_into_match_col() {
        let m = sample();
        for j in 0..m.cols() {
            assert_eq!(m.col_iter(j).collect::<Vec<_>>(), m.col(j));
            let mut buf = vec![999.0; 7];
            m.col_into(j, &mut buf);
            assert_eq!(buf, m.col(j));
        }
    }

    #[test]
    fn gram_matches_explicit_product() {
        let m = sample();
        let explicit = m.matmul(&m.transpose()).unwrap();
        assert!(m.gram().approx_eq(&explicit, 1e-12));
    }

    #[test]
    fn matvec_known() {
        let m = sample();
        let y = m.matvec(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(y, vec![6.0, 15.0]);
    }

    #[test]
    fn matvec_wrong_len() {
        let err = sample().matvec(&[1.0]).unwrap_err();
        assert!(matches!(err, LinalgError::ShapeMismatch { .. }));
    }

    #[test]
    fn select_rows_and_cols() {
        let m = sample();
        let r = m.select_rows(&[1, 0, 1]);
        assert_eq!(r.row(0), &[4.0, 5.0, 6.0]);
        assert_eq!(r.row(2), &[4.0, 5.0, 6.0]);
        let c = m.select_cols(&[2, 0]);
        assert_eq!(c.row(0), &[3.0, 1.0]);
    }

    #[test]
    fn arithmetic_ops() {
        let m = sample();
        let sum = &m + &m;
        assert_eq!(sum[(0, 0)], 2.0);
        let diff = &sum - &m;
        assert!(diff.approx_eq(&m, 1e-15));
        let neg = -&m;
        assert_eq!(neg[(1, 2)], -6.0);
        let scaled = &m * 2.0;
        assert_eq!(scaled[(0, 1)], 4.0);
    }

    #[test]
    fn assign_ops() {
        let mut m = sample();
        let other = sample();
        m += &other;
        assert_eq!(m[(0, 0)], 2.0);
        m -= &other;
        assert!(m.approx_eq(&sample(), 1e-15));
    }

    #[test]
    fn frobenius_norm_known() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn stacking() {
        let m = sample();
        let h = m.hstack(&m).unwrap();
        assert_eq!(h.shape(), (2, 6));
        assert_eq!(h.row(0), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
        let v = m.vstack(&m).unwrap();
        assert_eq!(v.shape(), (4, 3));
        assert_eq!(v.row(3), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn stacking_mismatch() {
        let m = sample();
        let t = m.transpose();
        assert!(m.hstack(&t).is_err());
        assert!(m.vstack(&t).is_err());
    }

    #[test]
    fn min_max_and_finite() {
        let m = sample();
        assert_eq!(m.min(), 1.0);
        assert_eq!(m.max(), 6.0);
        assert_eq!(m.max_abs(), 6.0);
        assert!(m.is_finite());
        let mut bad = m.clone();
        bad[(0, 0)] = f64::NAN;
        assert!(!bad.is_finite());
    }

    #[test]
    fn set_col_round_trip() {
        let mut m = sample();
        m.set_col(1, &[9.0, 8.0]);
        assert_eq!(m.col(1), vec![9.0, 8.0]);
    }

    #[test]
    fn debug_not_empty() {
        let m = sample();
        assert!(!format!("{m:?}").is_empty());
    }

    #[test]
    fn empty_matrix_behaviour() {
        let m = Matrix::zeros(0, 3);
        assert!(m.is_empty());
        assert_eq!(m.frobenius_norm(), 0.0);
        assert_eq!(m.max_abs(), 0.0);
    }
}
