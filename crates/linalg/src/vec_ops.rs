//! Small dense kernels on `&[f64]` slices.
//!
//! These are shared by the iterative solvers in `voltsense-sparse`
//! (conjugate gradient) and `voltsense-grouplasso` (BCD / FISTA), which work
//! on flat slices rather than [`crate::Matrix`] values for speed.

/// Dot product of two slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (l2) norm of a slice.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// l1 norm (sum of absolute values).
pub fn norm1(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).sum()
}

/// Infinity norm (largest absolute value), 0 for an empty slice.
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
}

/// `y += alpha * x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scales a slice in place: `x *= alpha`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Element-wise difference `a - b` into a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Arithmetic mean, 0 for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_known() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn norms_known() {
        let v = [3.0, -4.0];
        assert!((norm2(&v) - 5.0).abs() < 1e-15);
        assert!((norm1(&v) - 7.0).abs() < 1e-15);
        assert!((norm_inf(&v) - 4.0).abs() < 1e-15);
    }

    #[test]
    fn norm_inf_empty_is_zero() {
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = [1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, [-3.0, 6.0]);
    }

    #[test]
    fn sub_known() {
        assert_eq!(sub(&[5.0, 7.0], &[2.0, 3.0]), vec![3.0, 4.0]);
    }

    #[test]
    fn mean_known_and_empty() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
