//! Ordinary and ridge least squares in the paper's data layout.
//!
//! Throughout the workspace, data matrices have **variables as rows and
//! samples as columns** (the paper's Eq. 6). A multi-output linear model is
//! therefore `F ≈ α X + c 1ᵀ` with `X: P x N` predictors, `F: K x N`
//! responses, coefficients `α: K x P` and intercept `c: K`.
//!
//! The solver centers both sides, forms the Gram matrix `X̄ X̄ᵀ` and solves
//! the normal equations by Cholesky; if the Gram matrix is numerically
//! indefinite/singular (collinear predictors), it falls back to Householder
//! QR on the centered design, and as a last resort adds a tiny ridge.

use crate::decomp::{Cholesky, Qr};
use crate::stats;
use crate::{LinalgError, Matrix};

/// Result of a least-squares fit: `F ≈ coefficients · X + intercept`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearFit {
    /// Coefficient matrix `α` (`K x P`).
    pub coefficients: Matrix,
    /// Intercept vector `c` (`K`).
    pub intercept: Vec<f64>,
    /// Root-mean-square residual over all outputs and samples.
    pub rms_residual: f64,
}

impl LinearFit {
    /// Predicts responses for a single sample `x` (`P` values):
    /// `f* = α x + c`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len()` differs from the
    /// number of predictors.
    pub fn predict(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let mut f = vec![0.0; self.coefficients.rows()];
        self.predict_into(x, &mut f)?;
        Ok(f)
    }

    /// [`LinearFit::predict`] into a caller-provided output slice of
    /// length `K`, allocating nothing — the steady-state form of the
    /// per-reading runtime prediction.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] on predictor-count or
    /// output-length mismatch.
    pub fn predict_into(&self, x: &[f64], out: &mut [f64]) -> Result<(), LinalgError> {
        self.coefficients.matvec_into(x, out)?;
        for (fi, ci) in out.iter_mut().zip(&self.intercept) {
            *fi += ci;
        }
        Ok(())
    }

    /// Predicts responses for a batch of samples (columns of `x`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] on predictor-count mismatch.
    pub fn predict_matrix(&self, x: &Matrix) -> Result<Matrix, LinalgError> {
        let mut f = self.coefficients.matmul(x)?;
        for i in 0..f.rows() {
            let c = self.intercept[i];
            for v in f.row_mut(i) {
                *v += c;
            }
        }
        Ok(f)
    }
}

/// Solves the paper's OLS refit (Eq. 17):
/// `min_{α, c} ‖F − α X − C‖_F` with `X: P x N`, `F: K x N`.
///
/// # Errors
///
/// * [`LinalgError::ShapeMismatch`] if `X` and `F` disagree on the sample
///   count `N`.
/// * [`LinalgError::InvalidDimensions`] if there are no samples or no
///   predictors.
/// * [`LinalgError::NonFinite`] if the inputs contain NaN/infinity.
///
/// # Example
///
/// ```
/// use voltsense_linalg::{Matrix, lstsq};
///
/// # fn main() -> Result<(), voltsense_linalg::LinalgError> {
/// let x = Matrix::from_rows(&[&[0.0, 1.0, 2.0, 3.0]])?;
/// let f = Matrix::from_rows(&[&[1.0, 3.0, 5.0, 7.0], &[0.0, -1.0, -2.0, -3.0]])?;
/// let fit = lstsq::ols_with_intercept(&x, &f)?;
/// let pred = fit.predict(&[10.0])?;
/// assert!((pred[0] - 21.0).abs() < 1e-10);
/// assert!((pred[1] + 10.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn ols_with_intercept(x: &Matrix, f: &Matrix) -> Result<LinearFit, LinalgError> {
    fit_impl(x, f, 0.0)
}

/// Ridge-regularized variant: adds `ridge * I` to the Gram matrix. `ridge`
/// must be `>= 0`; `0` is plain OLS.
///
/// # Errors
///
/// Same as [`ols_with_intercept`]; additionally
/// [`LinalgError::InvalidDimensions`] if `ridge` is negative or non-finite.
pub fn ridge_with_intercept(x: &Matrix, f: &Matrix, ridge: f64) -> Result<LinearFit, LinalgError> {
    if !(ridge >= 0.0) || !ridge.is_finite() {
        return Err(LinalgError::InvalidDimensions {
            what: format!("ridge must be finite and >= 0, got {ridge}"),
        });
    }
    fit_impl(x, f, ridge)
}

fn fit_impl(x: &Matrix, f: &Matrix, ridge: f64) -> Result<LinearFit, LinalgError> {
    let (p, n) = x.shape();
    let (k, nf) = f.shape();
    if n != nf {
        return Err(LinalgError::ShapeMismatch {
            op: "ols sample count",
            left: x.shape(),
            right: f.shape(),
        });
    }
    if n == 0 || p == 0 || k == 0 {
        return Err(LinalgError::InvalidDimensions {
            what: format!("ols requires non-empty data, got X {p}x{n}, F {k}x{nf}"),
        });
    }
    if !x.is_finite() || !f.is_finite() {
        return Err(LinalgError::NonFinite { what: "ols input" });
    }

    // Center both sides.
    let x_means = stats::row_means(x);
    let f_means = stats::row_means(f);
    let xc = centered(x, &x_means);
    let fc = centered(f, &f_means);

    // Normal equations: α (X̄ X̄ᵀ + ridge I) = F̄ X̄ᵀ  =>  solve the SPD
    // system Gᵀ αᵀ = (F̄ X̄ᵀ)ᵀ where G = X̄ X̄ᵀ + ridge I is symmetric.
    let mut gram = xc.gram();
    if ridge > 0.0 {
        for i in 0..p {
            gram[(i, i)] += ridge;
        }
    }
    let fxt = fc.matmul(&xc.transpose())?; // K x P

    let alpha = match Cholesky::new(&gram) {
        Ok(chol) => {
            // Solve G aᵀ_row = fxt_row for each output row.
            let at = chol.solve_matrix(&fxt.transpose())?; // P x K
            at.transpose()
        }
        Err(_) => {
            // Collinear predictors: try QR on the centered design X̄ᵀ (N x P).
            match Qr::new(&xc.transpose()) {
                Ok(qr) => match qr.solve_least_squares_matrix(&fc.transpose()) {
                    Ok(at) => at.transpose(),
                    Err(_) => ridge_fallback(&mut gram, &fxt, p)?,
                },
                Err(_) => ridge_fallback(&mut gram, &fxt, p)?,
            }
        }
    };

    // Intercept: c = mean(F) − α mean(X).
    let alpha_mx = alpha.matvec(&x_means)?;
    let intercept: Vec<f64> = f_means
        .iter()
        .zip(&alpha_mx)
        .map(|(fm, am)| fm - am)
        .collect();

    // Residual on the training data.
    let mut resid = alpha.matmul(x)?;
    for i in 0..k {
        let c = intercept[i];
        for v in resid.row_mut(i) {
            *v += c;
        }
    }
    resid -= f;
    let rms_residual = resid.frobenius_norm() / ((k * n) as f64).sqrt();

    Ok(LinearFit {
        coefficients: alpha,
        intercept,
        rms_residual,
    })
}

/// Last-resort path for degenerate designs: a tiny relative ridge makes the
/// Gram matrix SPD; the resulting fit is the minimum-norm-ish solution.
fn ridge_fallback(gram: &mut Matrix, fxt: &Matrix, p: usize) -> Result<Matrix, LinalgError> {
    let bump = gram.max_abs().max(1.0) * 1e-10;
    for i in 0..p {
        gram[(i, i)] += bump;
    }
    let chol = Cholesky::new(gram)?;
    let at = chol.solve_matrix(&fxt.transpose())?;
    Ok(at.transpose())
}

fn centered(m: &Matrix, means: &[f64]) -> Matrix {
    let mut out = m.clone();
    for i in 0..out.rows() {
        let mu = means[i];
        for v in out.row_mut(i) {
            *v -= mu;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_recovery_multi_output() {
        // F = A X + c with known A, c; noiseless => exact recovery.
        let x = Matrix::from_rows(&[
            &[1.0, 2.0, 3.0, 4.0, 5.0],
            &[0.0, 1.0, 0.0, -1.0, 2.0],
        ])
        .unwrap();
        let a_true = Matrix::from_rows(&[&[2.0, -1.0], &[0.5, 3.0]]).unwrap();
        let c_true = [1.0, -2.0];
        let mut f = a_true.matmul(&x).unwrap();
        for i in 0..2 {
            for v in f.row_mut(i) {
                *v += c_true[i];
            }
        }
        let fit = ols_with_intercept(&x, &f).unwrap();
        assert!(fit.coefficients.approx_eq(&a_true, 1e-10));
        for (c, ct) in fit.intercept.iter().zip(&c_true) {
            assert!((c - ct).abs() < 1e-10);
        }
        assert!(fit.rms_residual < 1e-10);
    }

    #[test]
    fn predict_single_and_batch_agree() {
        let x = Matrix::from_rows(&[&[0.0, 1.0, 2.0, 3.0]]).unwrap();
        let f = Matrix::from_rows(&[&[1.0, 3.1, 4.9, 7.0]]).unwrap();
        let fit = ols_with_intercept(&x, &f).unwrap();
        let batch = fit.predict_matrix(&x).unwrap();
        for j in 0..4 {
            let single = fit.predict(&[x[(0, j)]]).unwrap();
            assert!((single[0] - batch[(0, j)]).abs() < 1e-12);
        }
    }

    #[test]
    fn residual_orthogonality() {
        // OLS residual must be orthogonal to centered predictors.
        let x = Matrix::from_rows(&[
            &[1.0, -1.0, 2.0, 0.5, -0.3, 1.7],
            &[0.2, 0.9, -1.1, 0.4, 2.0, -0.6],
        ])
        .unwrap();
        let f = Matrix::from_rows(&[&[1.0, 0.0, 2.0, -1.0, 0.5, 0.7]]).unwrap();
        let fit = ols_with_intercept(&x, &f).unwrap();
        let pred = fit.predict_matrix(&x).unwrap();
        let resid = &f - &pred;
        let xc = centered(&x, &stats::row_means(&x));
        let cross = resid.matmul(&xc.transpose()).unwrap();
        assert!(cross.max_abs() < 1e-10);
        // And the residual must sum to ~zero (intercept fitted).
        let s: f64 = resid.row(0).iter().sum();
        assert!(s.abs() < 1e-10);
    }

    #[test]
    fn collinear_predictors_fall_back_gracefully() {
        // Second predictor duplicates the first: Gram is singular but the
        // fit must still reproduce the (achievable) targets.
        let x = Matrix::from_rows(&[
            &[1.0, 2.0, 3.0, 4.0],
            &[2.0, 4.0, 6.0, 8.0],
        ])
        .unwrap();
        let f = Matrix::from_rows(&[&[3.0, 6.0, 9.0, 12.0]]).unwrap();
        let fit = ols_with_intercept(&x, &f).unwrap();
        let pred = fit.predict_matrix(&x).unwrap();
        assert!(pred.approx_eq(&f, 1e-6));
    }

    #[test]
    fn ridge_shrinks_coefficients() {
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]).unwrap();
        let f = Matrix::from_rows(&[&[2.0, 4.0, 6.0, 8.0]]).unwrap();
        let ols = ols_with_intercept(&x, &f).unwrap();
        let ridge = ridge_with_intercept(&x, &f, 10.0).unwrap();
        assert!(ridge.coefficients[(0, 0)].abs() < ols.coefficients[(0, 0)].abs());
    }

    #[test]
    fn ridge_rejects_negative() {
        let x = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let f = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        assert!(ridge_with_intercept(&x, &f, -1.0).is_err());
        assert!(ridge_with_intercept(&x, &f, f64::NAN).is_err());
    }

    #[test]
    fn sample_count_mismatch() {
        let x = Matrix::zeros(1, 3);
        let f = Matrix::zeros(1, 4);
        assert!(matches!(
            ols_with_intercept(&x, &f),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn empty_inputs_rejected() {
        assert!(ols_with_intercept(&Matrix::zeros(0, 4), &Matrix::zeros(1, 4)).is_err());
        assert!(ols_with_intercept(&Matrix::zeros(1, 0), &Matrix::zeros(1, 0)).is_err());
    }

    #[test]
    fn non_finite_rejected() {
        let x = Matrix::from_rows(&[&[1.0, f64::INFINITY]]).unwrap();
        let f = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        assert!(matches!(
            ols_with_intercept(&x, &f),
            Err(LinalgError::NonFinite { .. })
        ));
    }

    #[test]
    fn predict_wrong_dim() {
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]).unwrap();
        let f = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]).unwrap();
        let fit = ols_with_intercept(&x, &f).unwrap();
        assert!(fit.predict(&[1.0, 2.0]).is_err());
    }
}
