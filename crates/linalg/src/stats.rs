//! Statistical helpers: per-row standardization and correlation.
//!
//! The paper requires `x` and `f` to be normalized to zero mean and unit
//! variance before the group-lasso step (its Eq. 9–11). [`Normalizer`]
//! implements exactly that transformation — fitted on training columns,
//! applicable to new samples, and invertible so predicted `g*` values can be
//! mapped back to volts.

use crate::{LinalgError, Matrix};

/// Mean of each row of a matrix (one value per row).
pub fn row_means(m: &Matrix) -> Vec<f64> {
    let n = m.cols().max(1) as f64;
    (0..m.rows())
        .map(|i| m.row(i).iter().sum::<f64>() / n)
        .collect()
}

/// Population standard deviation of each row.
pub fn row_stds(m: &Matrix) -> Vec<f64> {
    let means = row_means(m);
    let n = m.cols().max(1) as f64;
    (0..m.rows())
        .map(|i| {
            let mu = means[i];
            (m.row(i).iter().map(|&x| (x - mu) * (x - mu)).sum::<f64>() / n).sqrt()
        })
        .collect()
}

/// Pearson correlation between two equally-long slices.
///
/// Returns 0 when either slice has zero variance.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson: length mismatch");
    assert!(!a.is_empty(), "pearson: empty input");
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    let denom = (va * vb).sqrt();
    if denom == 0.0 {
        0.0
    } else {
        cov / denom
    }
}

/// Per-row standardization fitted on a training matrix whose **columns are
/// samples** (the paper's `X`, `F` layout: variable per row, sample per
/// column).
///
/// Rows with (near-)zero variance are mapped with a unit scale so the
/// transform stays invertible; such rows carry no information and the
/// group lasso will assign them zero coefficients anyway.
///
/// # Example
///
/// ```
/// use voltsense_linalg::{Matrix, stats::Normalizer};
///
/// # fn main() -> Result<(), voltsense_linalg::LinalgError> {
/// let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0]])?;
/// let norm = Normalizer::fit(&x);
/// let z = norm.apply(&x)?;
/// // Zero mean...
/// assert!(z.row(0).iter().sum::<f64>().abs() < 1e-12);
/// // ...and the inverse recovers the input.
/// assert!(norm.invert(&z)?.approx_eq(&x, 1e-12));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Normalizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Normalizer {
    /// Threshold below which a row's standard deviation is treated as zero.
    const STD_FLOOR: f64 = 1e-12;

    /// Fits means and standard deviations on the rows of `training`.
    pub fn fit(training: &Matrix) -> Self {
        let means = row_means(training);
        let stds = row_stds(training)
            .into_iter()
            .map(|s| if s < Self::STD_FLOOR { 1.0 } else { s })
            .collect();
        Normalizer { means, stds }
    }

    /// Number of variables (rows) this normalizer was fitted on.
    pub fn dim(&self) -> usize {
        self.means.len()
    }

    /// Fitted per-row means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Fitted per-row standard deviations (zero-variance rows report 1.0).
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Standardizes a matrix with the fitted parameters:
    /// `z_ij = (x_ij − μ_i) / σ_i`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `m.rows() != self.dim()`.
    pub fn apply(&self, m: &Matrix) -> Result<Matrix, LinalgError> {
        if m.rows() != self.dim() {
            return Err(LinalgError::ShapeMismatch {
                op: "normalizer apply",
                left: (self.dim(), 0),
                right: m.shape(),
            });
        }
        let mut out = m.clone();
        for i in 0..out.rows() {
            let mu = self.means[i];
            let inv = 1.0 / self.stds[i];
            for v in out.row_mut(i) {
                *v = (*v - mu) * inv;
            }
        }
        Ok(out)
    }

    /// Standardizes a single sample vector (one value per variable).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != self.dim()`.
    pub fn apply_vec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.dim() {
            return Err(LinalgError::ShapeMismatch {
                op: "normalizer apply_vec",
                left: (self.dim(), 1),
                right: (x.len(), 1),
            });
        }
        Ok(x.iter()
            .enumerate()
            .map(|(i, &v)| (v - self.means[i]) / self.stds[i])
            .collect())
    }

    /// Inverse transform: `x_ij = z_ij σ_i + μ_i`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `m.rows() != self.dim()`.
    pub fn invert(&self, m: &Matrix) -> Result<Matrix, LinalgError> {
        if m.rows() != self.dim() {
            return Err(LinalgError::ShapeMismatch {
                op: "normalizer invert",
                left: (self.dim(), 0),
                right: m.shape(),
            });
        }
        let mut out = m.clone();
        for i in 0..out.rows() {
            let mu = self.means[i];
            let s = self.stds[i];
            for v in out.row_mut(i) {
                *v = *v * s + mu;
            }
        }
        Ok(out)
    }

    /// Inverse transform for a single sample vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `z.len() != self.dim()`.
    pub fn invert_vec(&self, z: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if z.len() != self.dim() {
            return Err(LinalgError::ShapeMismatch {
                op: "normalizer invert_vec",
                left: (self.dim(), 1),
                right: (z.len(), 1),
            });
        }
        Ok(z.iter()
            .enumerate()
            .map(|(i, &v)| v * self.stds[i] + self.means[i])
            .collect())
    }

    /// Restriction of this normalizer to a subset of its variables, in the
    /// given order. Used to carry sensor-candidate normalization over to the
    /// selected sensors.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select(&self, indices: &[usize]) -> Normalizer {
        Normalizer {
            means: indices.iter().map(|&i| self.means[i]).collect(),
            stds: indices.iter().map(|&i| self.stds[i]).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn training() -> Matrix {
        Matrix::from_rows(&[
            &[1.0, 2.0, 3.0, 4.0],
            &[10.0, 10.0, 10.0, 10.0],
            &[-1.0, 1.0, -1.0, 1.0],
        ])
        .unwrap()
    }

    #[test]
    fn row_means_known() {
        assert_eq!(row_means(&training()), vec![2.5, 10.0, 0.0]);
    }

    #[test]
    fn row_stds_known() {
        let stds = row_stds(&training());
        assert!((stds[0] - (1.25_f64).sqrt()).abs() < 1e-12);
        assert_eq!(stds[1], 0.0);
        assert!((stds[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_rows_have_zero_mean_unit_variance() {
        let t = training();
        let norm = Normalizer::fit(&t);
        let z = norm.apply(&t).unwrap();
        for i in [0usize, 2] {
            let row = z.row(i);
            let mu: f64 = row.iter().sum::<f64>() / row.len() as f64;
            let var: f64 = row.iter().map(|&x| (x - mu) * (x - mu)).sum::<f64>() / row.len() as f64;
            assert!(mu.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_variance_row_is_stable() {
        let t = training();
        let norm = Normalizer::fit(&t);
        let z = norm.apply(&t).unwrap();
        // Constant row maps to all-zeros (scale 1.0), not NaN.
        assert!(z.row(1).iter().all(|&v| v == 0.0));
        assert!(z.is_finite());
    }

    #[test]
    fn round_trip_matrix_and_vec() {
        let t = training();
        let norm = Normalizer::fit(&t);
        let z = norm.apply(&t).unwrap();
        assert!(norm.invert(&z).unwrap().approx_eq(&t, 1e-12));
        let x = [2.0, 10.0, 0.5];
        let zv = norm.apply_vec(&x).unwrap();
        let back = norm.invert_vec(&zv).unwrap();
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn select_restricts_variables() {
        let norm = Normalizer::fit(&training());
        let sub = norm.select(&[2, 0]);
        assert_eq!(sub.dim(), 2);
        assert_eq!(sub.means()[0], 0.0);
        assert_eq!(sub.means()[1], 2.5);
    }

    #[test]
    fn shape_mismatch_errors() {
        let norm = Normalizer::fit(&training());
        assert!(norm.apply(&Matrix::zeros(2, 4)).is_err());
        assert!(norm.invert(&Matrix::zeros(2, 4)).is_err());
        assert!(norm.apply_vec(&[1.0]).is_err());
        assert!(norm.invert_vec(&[1.0]).is_err());
    }

    #[test]
    fn pearson_perfect_correlation() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [-1.0, -2.0, -3.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_zero_variance_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }
}
