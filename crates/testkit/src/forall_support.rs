//! Runtime support for the [`forall!`](crate::forall) macro: the generic
//! case-loop/shrink driver, case seeding, quiet panic capture during
//! shrinking, and the final failure report.

use std::cell::Cell;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

use crate::gen::Gen;
use voltsense_workload::GaussianRng;

thread_local! {
    static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
}

static INSTALL_HOOK: Once = Once::new();

/// Installs (once, process-wide) a panic hook that suppresses the default
/// backtrace spew while *this thread* is inside a caught property check.
/// Other threads keep the previous hook's behaviour, so unrelated tests
/// failing concurrently still print normally.
fn install_quiet_hook() {
    INSTALL_HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

/// Runs a property body, converting a panic into `Err(message)`.
///
/// Used by `forall!` for both the initial case run and every shrink attempt,
/// so shrinking does not flood stderr with intermediate panic reports.
pub fn forall_catch(body: impl FnOnce()) -> Result<(), String> {
    install_quiet_hook();
    QUIET_PANICS.with(|q| q.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(body));
    QUIET_PANICS.with(|q| q.set(false));
    match result {
        Ok(()) => Ok(()),
        Err(payload) => Err(panic_message(payload.as_ref())),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Per-`forall!` configuration: case count and seed schedule.
///
/// The base seed mixes the test's `module_path!()` and `line!()` so distinct
/// properties explore distinct streams, while any given property replays the
/// same inputs on every run, platform, and toolchain.
#[derive(Debug, Clone)]
pub struct ForallConfig {
    cases: u64,
    base_seed: u64,
    fixed_seed: Option<u64>,
    module: &'static str,
    line: u32,
    /// Upper bound on accepted shrink steps (guards against float shrink
    /// sequences that keep producing new still-failing candidates forever).
    pub max_shrink_steps: u32,
}

impl ForallConfig {
    /// Builds the config for one `forall!` site, honouring the
    /// `TESTKIT_CASES` and `TESTKIT_SEED` environment overrides.
    pub fn new(default_cases: u64, module: &'static str, line: u32) -> Self {
        let cases = voltsense_telemetry::env::parse::<u64>("TESTKIT_CASES")
            .filter(|&n| n > 0)
            .unwrap_or(default_cases);
        let fixed_seed = voltsense_telemetry::env::parse::<u64>("TESTKIT_SEED");
        let mut base = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in module.bytes() {
            base ^= u64::from(b);
            base = base.wrapping_mul(0x0000_0100_0000_01b3);
        }
        base ^= u64::from(line).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ForallConfig {
            cases,
            base_seed: base,
            fixed_seed,
            module,
            line,
            max_shrink_steps: 500,
        }
    }

    /// Number of cases to run (1 when `TESTKIT_SEED` pins a replay).
    pub fn case_count(&self) -> u64 {
        if self.fixed_seed.is_some() {
            1
        } else {
            self.cases
        }
    }

    /// The RNG seed for case `index` — this is the value printed as the
    /// replay seed on failure.
    pub fn case_seed(&self, index: u64) -> u64 {
        if let Some(s) = self.fixed_seed {
            return s;
        }
        // SplitMix64 finalizer over base + index: well-spread, portable.
        let mut z = self
            .base_seed
            .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A tuple of generators, generated and shrunk as a unit.
///
/// Implemented for tuples of [`Gen`]s up to arity 8; this is what lets the
/// `forall!` driver be one generic function while each property names its
/// components individually.
pub trait GenTuple {
    /// The generated value tuple.
    type Values: Clone + fmt::Debug;

    /// Generates every component, left to right, from one seeded stream.
    fn generate(&self, rng: &mut GaussianRng) -> Self::Values;

    /// Number of components.
    fn components(&self) -> usize;

    /// Shrink candidates for component `index`, each spliced into a copy of
    /// `values` (empty when out of range or the component cannot shrink).
    fn shrink_component(&self, values: &Self::Values, index: usize) -> Vec<Self::Values>;
}

macro_rules! impl_gen_tuple {
    ($(($($g:ident . $idx:tt),+);)+) => {$(
        impl<$($g: Gen),+> GenTuple for ($($g,)+) {
            type Values = ($($g::Value,)+);

            fn generate(&self, rng: &mut GaussianRng) -> Self::Values {
                ($(self.$idx.generate(rng),)+)
            }

            fn components(&self) -> usize {
                [$(stringify!($idx)),+].len()
            }

            fn shrink_component(
                &self,
                values: &Self::Values,
                index: usize,
            ) -> Vec<Self::Values> {
                match index {
                    $($idx => self
                        .$idx
                        .shrink(&values.$idx)
                        .into_iter()
                        .map(|c| {
                            let mut v = values.clone();
                            v.$idx = c;
                            v
                        })
                        .collect(),)+
                    _ => Vec::new(),
                }
            }
        }
    )+};
}

impl_gen_tuple! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

/// The `forall!` driver: runs `check` over `cfg.case_count()` seeded cases;
/// on the first failure, greedily shrinks component by component (keeping a
/// candidate only if the property still fails) and panics with the minimal
/// failing input rendered by `render`, the failure message, and the replay
/// seed.
pub fn run_forall<T: GenTuple>(
    cfg: &ForallConfig,
    gens: &T,
    check: impl Fn(&T::Values) -> Result<(), String>,
    render: impl Fn(&T::Values) -> String,
) {
    for case in 0..cfg.case_count() {
        let seed = cfg.case_seed(case);
        let mut rng = GaussianRng::seed_from_u64(seed);
        let generated = gens.generate(&mut rng);
        let Err(first_msg) = check(&generated) else {
            continue;
        };
        let mut failing = generated;
        let mut msg = first_msg;
        let mut steps: u32 = 0;
        let mut progress = true;
        while progress && steps < cfg.max_shrink_steps {
            progress = false;
            for component in 0..gens.components() {
                // Greedy: keep re-shrinking this component while any
                // candidate still fails the property.
                'this_component: while steps < cfg.max_shrink_steps {
                    for candidate in gens.shrink_component(&failing, component) {
                        if let Err(m) = check(&candidate) {
                            failing = candidate;
                            msg = m;
                            steps += 1;
                            progress = true;
                            continue 'this_component;
                        }
                    }
                    break;
                }
            }
        }
        forall_fail(cfg, case, seed, steps, &render(&failing), &msg);
    }
}

/// Panics with the full property-failure report. Never returns.
fn forall_fail(
    cfg: &ForallConfig,
    case_index: u64,
    seed: u64,
    shrink_steps: u32,
    rendered_input: &str,
    message: &str,
) -> ! {
    panic!(
        "\nforall! property failed at {module}:{line} \
         (case {case} of {count})\n\
         minimal failing input after {steps} shrink step(s):\n{input}\
         failure: {msg}\n\
         replay seed: {seed} (rerun with TESTKIT_SEED={seed} cargo test -q)\n",
        module = cfg.module,
        line = cfg.line,
        case = case_index + 1,
        count = cfg.case_count(),
        steps = shrink_steps,
        input = rendered_input,
        msg = message,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seeds_are_deterministic_and_distinct() {
        let a = ForallConfig::new(64, "m", 1);
        let b = ForallConfig::new(64, "m", 1);
        assert_eq!(a.case_seed(0), b.case_seed(0));
        assert_eq!(a.case_seed(63), b.case_seed(63));
        assert_ne!(a.case_seed(0), a.case_seed(1));
    }

    #[test]
    fn different_sites_get_different_streams() {
        let a = ForallConfig::new(64, "m", 1);
        let b = ForallConfig::new(64, "m", 2);
        let c = ForallConfig::new(64, "other", 1);
        assert_ne!(a.case_seed(0), b.case_seed(0));
        assert_ne!(a.case_seed(0), c.case_seed(0));
    }

    #[test]
    fn catch_reports_panic_message() {
        assert_eq!(forall_catch(|| {}), Ok(()));
        let err = forall_catch(|| panic!("boom {}", 7)).unwrap_err();
        assert!(err.contains("boom 7"), "got: {err}");
    }
}
