//! A small wall-clock bench harness (the workspace's criterion stand-in).
//!
//! Measurement model: calibrate a batch size so one sample takes a few
//! milliseconds (amortising timer overhead for nanosecond-scale bodies),
//! run a fixed number of warmup samples to populate caches, then report the
//! **median** of k timed samples — robust to scheduler noise without any
//! statistics machinery. Reports are printed to stdout and written as JSON
//! to `results/bench_<suite>.json` so runs can be diffed across commits.
//!
//! The JSON report follows the workspace-wide `voltsense-metrics-v1`
//! schema (documented in DESIGN.md §7): every benchmark entry carries the
//! shared `name`/`value`/`unit` fields (the headline median in ns) next to
//! the bench-specific detail fields, so bench reports and telemetry
//! snapshots are mergeable by the same tooling.
//!
//! Environment knobs (all parsed by [`voltsense_telemetry::env`]):
//!
//! * `TESTKIT_BENCH_SAMPLES=k` — timed samples per benchmark (default 11).
//! * `TESTKIT_BENCH_FAST=1` (or `true`/`on`/`yes`) — 3 samples, minimal
//!   calibration (CI smoke).
//! * `TESTKIT_RESULTS_DIR=dir` — override the output directory.

use std::fs;
use std::hint::black_box;
use std::io;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use voltsense_telemetry::env;

/// Target duration of one timed sample after batch calibration.
const TARGET_SAMPLE: Duration = Duration::from_millis(5);

/// One benchmark's measurement summary (per-iteration costs in ns).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Benchmark label, unique within the suite.
    pub name: String,
    /// Inner iterations per timed sample (batch size from calibration).
    pub iters_per_sample: u64,
    /// Number of timed samples.
    pub samples: u32,
    /// Median per-iteration time (ns) — the headline number.
    pub median_ns: f64,
    /// Fastest per-iteration sample (ns).
    pub min_ns: f64,
    /// Slowest per-iteration sample (ns).
    pub max_ns: f64,
}

/// Collects [`BenchRecord`]s for one suite and writes the JSON report.
#[derive(Debug)]
pub struct BenchTimer {
    suite: String,
    warmup: u32,
    samples: u32,
    records: Vec<BenchRecord>,
}

impl BenchTimer {
    /// Creates a timer for the named suite (the JSON file stem).
    pub fn new(suite: &str) -> Self {
        let fast = env::flag("TESTKIT_BENCH_FAST");
        let samples = env::parse::<u32>("TESTKIT_BENCH_SAMPLES")
            .filter(|&k| k > 0)
            .unwrap_or(if fast { 3 } else { 11 });
        BenchTimer {
            suite: suite.to_string(),
            warmup: if fast { 1 } else { 3 },
            samples,
            records: Vec::new(),
        }
    }

    /// Times `body`, printing and recording the median-of-k summary.
    ///
    /// The closure's return value is passed through [`black_box`] so the
    /// optimiser cannot delete the measured work.
    pub fn bench<R>(&mut self, name: &str, mut body: impl FnMut() -> R) -> &BenchRecord {
        let iters = calibrate(&mut body);
        let sample = |body: &mut dyn FnMut() -> R| -> f64 {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(body());
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        };
        for _ in 0..self.warmup {
            sample(&mut body);
        }
        let mut times: Vec<f64> = (0..self.samples).map(|_| sample(&mut body)).collect();
        times.sort_by(|a, b| a.total_cmp(b));
        let record = BenchRecord {
            name: name.to_string(),
            iters_per_sample: iters,
            samples: self.samples,
            median_ns: times[times.len() / 2],
            min_ns: times[0],
            max_ns: times[times.len() - 1],
        };
        println!(
            "bench {}/{}: median {} (min {}, max {}, {} iters x {} samples)",
            self.suite,
            record.name,
            format_ns(record.median_ns),
            format_ns(record.min_ns),
            format_ns(record.max_ns),
            record.iters_per_sample,
            record.samples,
        );
        self.records.push(record);
        self.records.last().expect("just pushed")
    }

    /// Records collected so far.
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }

    /// Writes `results/bench_<suite>.json` and returns its path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from creating the directory or file.
    pub fn finish(self) -> io::Result<PathBuf> {
        let dir = env::results_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("bench_{}.json", self.suite));
        fs::write(&path, self.to_json())?;
        println!("bench {}: wrote {}", self.suite, path.display());
        Ok(path)
    }

    /// Renders the suite report as `voltsense-metrics-v1` JSON
    /// (hand-rolled; the dependency policy rules out serde, and the schema
    /// is flat). The shared `value`/`unit` fields carry the median in ns.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"schema\": \"voltsense-metrics-v1\",\n");
        s.push_str(&format!("  \"suite\": \"{}\",\n", escape(&self.suite)));
        s.push_str("  \"benchmarks\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"value\": {}, \"unit\": \"ns\", \
                 \"median_ns\": {}, \"min_ns\": {}, \
                 \"max_ns\": {}, \"iters_per_sample\": {}, \"samples\": {}}}{}\n",
                escape(&r.name),
                r.median_ns,
                r.median_ns,
                r.min_ns,
                r.max_ns,
                r.iters_per_sample,
                r.samples,
                if i + 1 < self.records.len() { "," } else { "" },
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Doubles the batch size until one batch reaches [`TARGET_SAMPLE`] (capped
/// to keep calibration itself cheap for slow bodies).
fn calibrate<R>(body: &mut impl FnMut() -> R) -> u64 {
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(body());
        }
        let elapsed = start.elapsed();
        if elapsed >= TARGET_SAMPLE || iters >= 1 << 20 {
            return iters;
        }
        iters *= 2;
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_between_min_and_max() {
        let mut t = BenchTimer::new("selftest");
        let r = t.bench("spin", || {
            let mut x = 0u64;
            for i in 0..100 {
                x = x.wrapping_add(i);
            }
            x
        });
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert!(r.min_ns > 0.0);
    }

    #[test]
    fn json_report_follows_shared_metrics_schema() {
        let mut t = BenchTimer::new("jsontest");
        t.bench("noop", || 1u8);
        let json = t.to_json();
        let doc = voltsense_telemetry::json::parse(&json).expect("report must be valid JSON");
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some("voltsense-metrics-v1")
        );
        assert_eq!(doc.get("suite").and_then(|v| v.as_str()), Some("jsontest"));
        let benches = doc.get("benchmarks").and_then(|v| v.as_array()).unwrap();
        assert_eq!(benches.len(), 1);
        let b = &benches[0];
        assert_eq!(b.get("name").and_then(|v| v.as_str()), Some("noop"));
        assert_eq!(b.get("unit").and_then(|v| v.as_str()), Some("ns"));
        // The shared `value` field carries the headline median.
        assert_eq!(
            b.get("value").and_then(|v| v.as_f64()),
            b.get("median_ns").and_then(|v| v.as_f64())
        );
    }

    #[test]
    fn escape_handles_quotes_and_backslashes() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn format_ns_picks_sane_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2.0e9).ends_with('s'));
    }
}
