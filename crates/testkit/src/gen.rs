//! Seeded value generators with greedy shrinking.
//!
//! Each generator produces values from the workspace's portable
//! [`GaussianRng`] stream and knows how to *shrink* a failing value toward
//! its simplest representative (0 when the range contains it, else the low
//! end). Shrink candidates are ordered most-aggressive-first; the `forall!`
//! driver keeps a candidate only if the property still fails on it.
//!
//! Domain-specific inputs (grid configs, group-lasso problems, …) are built
//! inside test bodies from these primitives, so shrinking automatically
//! operates on the underlying scalars.

use std::fmt;

use voltsense_linalg::Matrix;
use voltsense_workload::GaussianRng;

/// A deterministic value generator with greedy shrinking.
pub trait Gen {
    /// The generated value type.
    type Value: Clone + fmt::Debug;

    /// Draws one value from the seeded stream.
    fn generate(&self, rng: &mut GaussianRng) -> Self::Value;

    /// Proposes simpler candidates for a failing value, most aggressive
    /// first. Every candidate must lie in the generator's value space. The
    /// default is "cannot shrink".
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

impl<G: Gen + ?Sized> Gen for &G {
    type Value = G::Value;

    fn generate(&self, rng: &mut GaussianRng) -> Self::Value {
        (**self).generate(rng)
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

/// The simplest value inside `[lo, hi)`: 0 when the range straddles it,
/// otherwise the low endpoint.
fn simplest_f64(lo: f64, hi: f64) -> f64 {
    if lo <= 0.0 && 0.0 < hi {
        0.0
    } else {
        lo
    }
}

/// Shrink candidates for one float toward `target` within `[lo, hi)`.
fn shrink_f64_toward(v: f64, target: f64, lo: f64, hi: f64) -> Vec<f64> {
    if !(v - target).is_finite() || (v - target).abs() < 1e-9 {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut push = |c: f64| {
        if c.is_finite() && c >= lo && c < hi && c != v && !out.contains(&c) {
            out.push(c);
        }
    };
    push(target);
    push(target + (v - target) / 2.0);
    push(target + (v - target) / 4.0);
    // Decimal truncation makes counterexamples human-readable.
    push((v * 100.0).trunc() / 100.0);
    out
}

/// Uniform `f64` in `[lo, hi)`, shrinking toward the simplest in-range value.
#[derive(Debug, Clone, Copy)]
pub struct F64Range {
    lo: f64,
    hi: f64,
}

/// Uniform `f64` in `[lo, hi)`.
///
/// # Panics
///
/// Panics unless `lo < hi` and both are finite.
pub fn f64_range(lo: f64, hi: f64) -> F64Range {
    assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range [{lo}, {hi})");
    F64Range { lo, hi }
}

impl Gen for F64Range {
    type Value = f64;

    fn generate(&self, rng: &mut GaussianRng) -> f64 {
        self.lo + (self.hi - self.lo) * rng.uniform()
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        shrink_f64_toward(*value, simplest_f64(self.lo, self.hi), self.lo, self.hi)
    }
}

/// Uniform `usize` in `[lo, hi)`, shrinking toward `lo`.
#[derive(Debug, Clone, Copy)]
pub struct UsizeRange {
    lo: usize,
    hi: usize,
}

/// Uniform `usize` in `[lo, hi)`.
///
/// # Panics
///
/// Panics unless `lo < hi`.
pub fn usize_range(lo: usize, hi: usize) -> UsizeRange {
    assert!(lo < hi, "bad range [{lo}, {hi})");
    UsizeRange { lo, hi }
}

impl Gen for UsizeRange {
    type Value = usize;

    fn generate(&self, rng: &mut GaussianRng) -> usize {
        self.lo + rng.uniform_index(self.hi - self.lo)
    }

    fn shrink(&self, value: &usize) -> Vec<usize> {
        let v = *value;
        let mut out = Vec::new();
        let mut push = |c: usize| {
            if c >= self.lo && c < self.hi && c != v && !out.contains(&c) {
                out.push(c);
            }
        };
        if v > self.lo {
            push(self.lo);
            push(self.lo + (v - self.lo) / 2);
            push(v - 1);
        }
        out
    }
}

/// Uniform `u64` in `[lo, hi)`, shrinking toward `lo`.
#[derive(Debug, Clone, Copy)]
pub struct U64Range {
    lo: u64,
    hi: u64,
}

/// Uniform `u64` in `[lo, hi)`.
///
/// # Panics
///
/// Panics unless `lo < hi`.
pub fn u64_range(lo: u64, hi: u64) -> U64Range {
    assert!(lo < hi, "bad range [{lo}, {hi})");
    U64Range { lo, hi }
}

impl Gen for U64Range {
    type Value = u64;

    fn generate(&self, rng: &mut GaussianRng) -> u64 {
        // Multiply-shift over the span; bias is negligible for span << 2^64.
        let span = self.hi - self.lo;
        self.lo + ((rng.next_u64() as u128 * span as u128) >> 64) as u64
    }

    fn shrink(&self, value: &u64) -> Vec<u64> {
        let v = *value;
        let mut out = Vec::new();
        let mut push = |c: u64| {
            if c >= self.lo && c < self.hi && c != v && !out.contains(&c) {
                out.push(c);
            }
        };
        if v > self.lo {
            push(self.lo);
            push(self.lo + (v - self.lo) / 2);
            push(v - 1);
        }
        out
    }
}

/// Fixed-length `Vec<f64>` with i.i.d. uniform entries in `[lo, hi)`.
#[derive(Debug, Clone, Copy)]
pub struct VecF64 {
    len: usize,
    lo: f64,
    hi: f64,
}

/// Fixed-length `Vec<f64>` with entries uniform in `[lo, hi)`.
///
/// # Panics
///
/// Panics unless `lo < hi` and both are finite.
pub fn vec_f64(len: usize, lo: f64, hi: f64) -> VecF64 {
    assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range [{lo}, {hi})");
    VecF64 { len, lo, hi }
}

/// Per-index shrinking is only attempted for short vectors; beyond this the
/// candidate count (and therefore property re-runs) would dominate runtime.
const PER_ELEMENT_SHRINK_LIMIT: usize = 16;

impl Gen for VecF64 {
    type Value = Vec<f64>;

    fn generate(&self, rng: &mut GaussianRng) -> Vec<f64> {
        (0..self.len)
            .map(|_| self.lo + (self.hi - self.lo) * rng.uniform())
            .collect()
    }

    fn shrink(&self, value: &Vec<f64>) -> Vec<Vec<f64>> {
        let t = simplest_f64(self.lo, self.hi);
        let mut out: Vec<Vec<f64>> = Vec::new();
        let mut push = |c: Vec<f64>| {
            if &c != value && !out.contains(&c) {
                out.push(c);
            }
        };
        // Whole-vector moves first (aggressive), then element-wise.
        push(vec![t; value.len()]);
        push(value.iter().map(|&v| t + (v - t) / 2.0).collect());
        if value.len() <= PER_ELEMENT_SHRINK_LIMIT {
            for i in 0..value.len() {
                if (value[i] - t).abs() > 1e-9 {
                    let mut c = value.clone();
                    c[i] = t;
                    push(c);
                }
            }
        }
        out
    }
}

/// Dense matrix with i.i.d. uniform entries in `[lo, hi)`.
#[derive(Debug, Clone, Copy)]
pub struct MatrixGen {
    rows: usize,
    cols: usize,
    lo: f64,
    hi: f64,
}

/// `rows × cols` matrix with entries uniform in `[lo, hi)`.
///
/// # Panics
///
/// Panics unless the shape is non-empty, `lo < hi` and both are finite.
pub fn matrix(rows: usize, cols: usize, lo: f64, hi: f64) -> MatrixGen {
    assert!(rows > 0 && cols > 0, "empty matrix shape {rows}x{cols}");
    assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range [{lo}, {hi})");
    MatrixGen { rows, cols, lo, hi }
}

impl Gen for MatrixGen {
    type Value = Matrix;

    fn generate(&self, rng: &mut GaussianRng) -> Matrix {
        let data: Vec<f64> = (0..self.rows * self.cols)
            .map(|_| self.lo + (self.hi - self.lo) * rng.uniform())
            .collect();
        Matrix::from_vec(self.rows, self.cols, data).expect("generator shape is valid")
    }

    fn shrink(&self, value: &Matrix) -> Vec<Matrix> {
        let t = simplest_f64(self.lo, self.hi);
        let rebuild = |data: Vec<f64>| {
            Matrix::from_vec(self.rows, self.cols, data).expect("shape preserved")
        };
        let entries: Vec<f64> = (0..self.rows)
            .flat_map(|r| value.row(r).to_vec())
            .collect();
        let mut out: Vec<Matrix> = Vec::new();
        let mut push = |c: Matrix| {
            if &c != value && !out.contains(&c) {
                out.push(c);
            }
        };
        push(rebuild(vec![t; entries.len()]));
        push(rebuild(entries.iter().map(|&v| t + (v - t) / 2.0).collect()));
        if entries.len() <= PER_ELEMENT_SHRINK_LIMIT {
            for i in 0..entries.len() {
                if (entries[i] - t).abs() > 1e-9 {
                    let mut c = entries.clone();
                    c[i] = t;
                    push(rebuild(c));
                }
            }
        }
        out
    }
}

/// Uniform pick from a fixed list of alternatives.
#[derive(Debug, Clone)]
pub struct Choice<T> {
    options: Vec<T>,
}

/// Uniform pick from `options`, shrinking toward earlier entries — order the
/// list simplest-first.
///
/// # Panics
///
/// Panics if `options` is empty.
pub fn choice<T: Clone + fmt::Debug>(options: Vec<T>) -> Choice<T> {
    assert!(!options.is_empty(), "choice needs at least one option");
    Choice { options }
}

impl<T: Clone + fmt::Debug + PartialEq> Gen for Choice<T> {
    type Value = T;

    fn generate(&self, rng: &mut GaussianRng) -> T {
        self.options[rng.uniform_index(self.options.len())].clone()
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        // Everything strictly before the failing value, simplest first.
        let pos = self.options.iter().position(|o| o == value);
        match pos {
            Some(p) => self.options[..p].to_vec(),
            None => Vec::new(),
        }
    }
}

/// Well-conditioned SPD matrix `A = B Bᵀ + (n + 1)·I`.
#[derive(Debug, Clone, Copy)]
pub struct SpdGen {
    n: usize,
    scale: f64,
}

/// `n × n` SPD matrix built from a uniform `[-10, 10)` factor, matching the
/// conditioning the dense-solver tests need.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn spd(n: usize) -> SpdGen {
    assert!(n > 0, "empty SPD matrix");
    SpdGen { n, scale: 10.0 }
}

impl Gen for SpdGen {
    type Value = Matrix;

    fn generate(&self, rng: &mut GaussianRng) -> Matrix {
        let b = matrix(self.n, self.n, -self.scale, self.scale).generate(rng);
        let mut a = b.gram();
        for i in 0..self.n {
            a[(i, i)] += self.n as f64 + 1.0;
        }
        a
    }

    fn shrink(&self, value: &Matrix) -> Vec<Matrix> {
        // Both moves keep the value SPD: the diagonal-only matrix has
        // entries ≥ n + 1 > 0, and averaging an SPD matrix with its own
        // (positive) diagonal stays SPD.
        let n = self.n;
        let diag_only = {
            let mut d = Matrix::zeros(n, n);
            for i in 0..n {
                d[(i, i)] = value[(i, i)];
            }
            d
        };
        let halved_off_diag = {
            let mut h = value.clone();
            for i in 0..n {
                for j in 0..n {
                    if i != j {
                        h[(i, j)] /= 2.0;
                    }
                }
            }
            h
        };
        let mut out = Vec::new();
        for c in [diag_only, halved_off_diag] {
            let close = c.approx_eq(value, 1e-9 * value.max_abs().max(1.0));
            if !close && !out.contains(&c) {
                out.push(c);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> GaussianRng {
        GaussianRng::seed_from_u64(99)
    }

    #[test]
    fn f64_range_stays_in_bounds_and_shrinks_toward_zero() {
        let g = f64_range(-3.0, 5.0);
        let mut r = rng();
        for _ in 0..1000 {
            let v = g.generate(&mut r);
            assert!((-3.0..5.0).contains(&v));
        }
        let cands = g.shrink(&4.0);
        assert_eq!(cands[0], 0.0);
        assert!(cands.iter().all(|&c| (-3.0..5.0).contains(&c)));
    }

    #[test]
    fn positive_range_shrinks_toward_low_end() {
        let g = f64_range(2.0, 9.0);
        let cands = g.shrink(&8.0);
        assert_eq!(cands[0], 2.0);
        assert!(g.shrink(&2.0).is_empty());
    }

    #[test]
    fn usize_range_generates_and_shrinks_in_bounds() {
        let g = usize_range(3, 10);
        let mut r = rng();
        for _ in 0..1000 {
            let v = g.generate(&mut r);
            assert!((3..10).contains(&v));
        }
        let cands = g.shrink(&9);
        assert_eq!(cands[0], 3);
        assert!(g.shrink(&3).is_empty());
    }

    #[test]
    fn u64_range_in_bounds() {
        let g = u64_range(0, 1000);
        let mut r = rng();
        for _ in 0..1000 {
            assert!(g.generate(&mut r) < 1000);
        }
        assert_eq!(g.shrink(&500)[0], 0);
    }

    #[test]
    fn vec_gen_has_fixed_len_and_aggressive_first_shrink() {
        let g = vec_f64(5, 0.1, 2.0);
        let mut r = rng();
        let v = g.generate(&mut r);
        assert_eq!(v.len(), 5);
        assert!(v.iter().all(|&x| (0.1..2.0).contains(&x)));
        let cands = g.shrink(&v);
        assert_eq!(cands[0], vec![0.1; 5]);
    }

    #[test]
    fn matrix_gen_shape_and_shrink() {
        let g = matrix(3, 4, -1.0, 1.0);
        let mut r = rng();
        let m = g.generate(&mut r);
        assert_eq!(m.shape(), (3, 4));
        let cands = g.shrink(&m);
        assert!(!cands.is_empty());
        assert_eq!(cands[0], Matrix::zeros(3, 4));
    }

    #[test]
    fn spd_gen_is_symmetric_positive_definite_and_shrinks_spd() {
        use voltsense_linalg::decomp::Cholesky;
        let g = spd(5);
        let mut r = rng();
        let a = g.generate(&mut r);
        assert!(Cholesky::new(&a).is_ok(), "generated matrix must be SPD");
        for c in g.shrink(&a) {
            assert!(Cholesky::new(&c).is_ok(), "shrunk matrix must stay SPD");
        }
    }

    #[test]
    fn choice_picks_from_options_and_shrinks_toward_front() {
        let g = choice(vec!["a", "b", "c"]);
        let mut r = rng();
        for _ in 0..100 {
            assert!(["a", "b", "c"].contains(&g.generate(&mut r)));
        }
        assert_eq!(g.shrink(&"c"), vec!["a", "b"]);
        assert!(g.shrink(&"a").is_empty());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g = vec_f64(8, -1.0, 1.0);
        let a = g.generate(&mut GaussianRng::seed_from_u64(5));
        let b = g.generate(&mut GaussianRng::seed_from_u64(5));
        assert_eq!(a, b);
    }
}
