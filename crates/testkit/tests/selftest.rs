//! End-to-end self-tests of the `forall!` harness: passing properties run
//! all cases, failing properties shrink to a minimal input and report a
//! replay seed, and the whole pipeline is deterministic.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};

use voltsense_testkit::{f64_range, forall, matrix, spd, usize_range, vec_f64};

/// Runs a closure expecting it to panic, returning the panic message.
fn failure_message(f: impl FnOnce()) -> String {
    let err = catch_unwind(AssertUnwindSafe(f)).expect_err("property should fail");
    if let Some(s) = err.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = err.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        panic!("non-string panic payload");
    }
}

#[test]
fn passing_property_runs_every_case() {
    let runs = AtomicU64::new(0);
    forall!(cases = 64, (x in f64_range(-1.0, 1.0), n in usize_range(1, 10)) => {
        runs.fetch_add(1, Ordering::Relaxed);
        assert!((-1.0..1.0).contains(&x));
        assert!((1..10).contains(&n));
    });
    // `TESTKIT_CASES`/`TESTKIT_SEED` change the count by design; only pin it
    // when the environment leaves the default in place.
    if std::env::var("TESTKIT_CASES").is_err() && std::env::var("TESTKIT_SEED").is_err() {
        assert_eq!(runs.load(Ordering::Relaxed), 64);
    }
}

#[test]
fn failing_property_reports_replay_seed_and_input() {
    let msg = failure_message(|| {
        forall!(cases = 64, (x in f64_range(0.0, 100.0)) => {
            assert!(x < 50.0, "too big: {x}");
        });
    });
    assert!(msg.contains("forall! property failed"), "got: {msg}");
    assert!(msg.contains("replay seed:"), "got: {msg}");
    assert!(msg.contains("x = "), "got: {msg}");
    assert!(msg.contains("too big"), "got: {msg}");
}

#[test]
fn shrinking_finds_a_near_minimal_scalar() {
    // Property fails for x ≥ 10; the minimal counterexample is x = 10. The
    // greedy shrinker bisects toward 0, so it must land within a candidate
    // step of the boundary — well under the typical first failure (~55 on
    // uniform [0, 100)).
    let msg = failure_message(|| {
        forall!(cases = 64, (x in f64_range(0.0, 100.0)) => {
            assert!(x < 10.0);
        });
    });
    let rendered: f64 = msg
        .lines()
        .find_map(|l| l.trim().strip_prefix("x = "))
        .expect("rendered input")
        .parse()
        .expect("parses as f64");
    assert!(
        (10.0..=20.0).contains(&rendered),
        "shrink should approach the x = 10 boundary, got {rendered}"
    );
}

#[test]
fn shrinking_zeroes_irrelevant_vector_components() {
    // Only index 2 matters (the property fails iff v[2] ≥ 0.25); every
    // other component should shrink to the range's simplest value, 0.
    let msg = failure_message(|| {
        forall!(cases = 64, (v in vec_f64(6, -1.0, 1.0)) => {
            assert!(v[2] < 0.25, "v[2] = {}", v[2]);
        });
    });
    let rendered = msg
        .lines()
        .find(|l| l.trim_start().starts_with("v = "))
        .expect("rendered input")
        .to_string();
    // The five irrelevant components all shrank to exactly 0.0, and the
    // culprit stayed at or just above the failure boundary.
    assert_eq!(rendered.matches("0.0").count(), 5, "got: {rendered}");
    let culprit: f64 = rendered
        .trim()
        .trim_start_matches("v = [")
        .trim_end_matches(']')
        .split(", ")
        .nth(2)
        .expect("six components")
        .parse()
        .expect("parses");
    assert!((0.25..0.5).contains(&culprit), "got culprit {culprit}");
}

#[test]
fn matrix_and_spd_generators_compose_with_the_macro() {
    forall!(cases = 64, (m in matrix(3, 4, -5.0, 5.0), a in spd(4)) => {
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(a.shape(), (4, 4));
        // SPD implies symmetric and positive diagonal.
        for i in 0..4 {
            assert!(a[(i, i)] > 0.0);
            for j in 0..4 {
                assert!((a[(i, j)] - a[(j, i)]).abs() < 1e-12);
            }
        }
    });
}

#[test]
fn failures_are_deterministic_across_runs() {
    let run = || {
        failure_message(|| {
            forall!(cases = 64, (x in f64_range(0.0, 1.0), y in f64_range(0.0, 1.0)) => {
                assert!(x + y < 1.2, "sum {}", x + y);
            });
        })
    };
    assert_eq!(run(), run());
}
