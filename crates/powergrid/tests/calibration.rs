//! Calibration of the default grid parameters.
//!
//! The paper's detection experiments need voltage emergencies (droops
//! below 0.85 V at VDD = 1.0 V) to occur in a minority of samples — often
//! enough to measure miss rates, rarely enough to be "emergencies". These
//! tests pin the default [`GridConfig`] to that regime on the small test
//! chip and print the observed distribution (run with `--nocapture`).

use voltsense_floorplan::{ChipConfig, ChipFloorplan, NodeSite};
use voltsense_powergrid::{sample_benchmark, GridConfig, GridModel, SampleConfig};
use voltsense_workload::{parsec_like_suite, TraceConfig, WorkloadTrace};

/// Per-sample worst FA voltage across a few benchmarks.
fn worst_fa_voltages(duration_ns: f64, benchmarks: &[usize]) -> Vec<f64> {
    let chip = ChipFloorplan::new(&ChipConfig::small_test()).unwrap();
    let model = GridModel::build(&chip, &GridConfig::small_test()).unwrap();
    let suite = parsec_like_suite();
    let fa_nodes: Vec<usize> = chip
        .lattice()
        .iter()
        .filter_map(|(id, site)| matches!(site, NodeSite::FunctionArea(_)).then_some(id.0))
        .collect();

    let mut worst = Vec::new();
    for &bi in benchmarks {
        let trace = WorkloadTrace::generate(
            &suite[bi],
            chip.blocks(),
            &TraceConfig {
                duration_ns,
                ..TraceConfig::default()
            },
        )
        .unwrap();
        let maps = sample_benchmark(&model, &trace, &SampleConfig::default()).unwrap();
        for s in 0..maps.num_samples() {
            let m = fa_nodes
                .iter()
                .map(|&n| maps.maps()[(n, s)])
                .fold(f64::INFINITY, f64::min);
            worst.push(m);
        }
    }
    worst
}

#[test]
fn emergencies_occur_at_a_paper_like_rate() {
    let worst = worst_fa_voltages(3000.0, &[0, 3, 12]);
    let n = worst.len() as f64;
    let emergencies = worst.iter().filter(|&&v| v < 0.85).count() as f64;
    let rate = emergencies / n;
    let min = worst.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = worst.iter().sum::<f64>() / n;
    println!("samples={n} emergency_rate={rate:.3} min={min:.3} mean_worst={mean:.3}");
    // The paper's Table 2 rates (TE ~0.03 at WAE ~0 and ME ~0.1) imply a
    // sizeable fraction of samples carry emergencies; target that regime.
    assert!(
        rate > 0.05,
        "emergencies too rare (rate {rate:.4}, min {min:.3}) — grid too stiff"
    );
    assert!(
        rate < 0.6,
        "emergencies dominate (rate {rate:.4}) — grid too weak"
    );
    assert!(min > 0.5, "grid collapsed: min {min:.3}");
}

#[test]
fn typical_droop_is_tens_of_millivolts() {
    let worst = worst_fa_voltages(1500.0, &[0]);
    let mean = worst.iter().sum::<f64>() / worst.len() as f64;
    // Mean worst-case FA voltage in a realistic band: visible droop but
    // well above collapse.
    assert!(
        (0.80..0.95).contains(&mean),
        "mean worst FA voltage {mean:.3} outside plausible band"
    );
}
