//! Property-based tests of the power-grid physics invariants (testkit
//! harness: 64 deterministic seeded cases per property, greedy shrinking).

use voltsense_floorplan::{ChipConfig, ChipFloorplan};
use voltsense_powergrid::{GridConfig, GridModel, Integration, TransientSimulator};
use voltsense_testkit::{f64_range, forall};

/// Builds the grid config the suite explores; assembled from shrinkable
/// primitives so failing cases reduce to the simplest electrical setup.
fn grid_config(seg: f64, pad_r: f64, pad_l: f64, spacing: f64) -> GridConfig {
    GridConfig {
        segment_resistance: seg,
        pad_resistance: pad_r,
        pad_inductance_nh: pad_l,
        pad_spacing_um: spacing,
        ..GridConfig::default()
    }
}

fn chip() -> ChipFloorplan {
    ChipFloorplan::new(&ChipConfig::small_test()).expect("chip builds")
}

#[test]
fn dc_voltages_bounded_by_vdd() {
    let chip = chip();
    forall!(cases = 64, (seg in f64_range(0.05, 0.5), pad_r in f64_range(0.2, 1.5),
                         pad_l in f64_range(0.0, 0.4), spacing in f64_range(500.0, 1500.0),
                         scale in f64_range(0.0, 1.5)) => {
        let cfg = grid_config(seg, pad_r, pad_l, spacing);
        let model = GridModel::build(&chip, &cfg).expect("model builds");
        let currents: Vec<f64> = chip
            .blocks()
            .iter()
            .map(|b| scale * b.nominal_power())
            .collect();
        let v = model.dc_solve(&currents).expect("dc solve");
        for &x in &v {
            // Current sinks can only pull the passive network *down*
            // (an ideal-sink linear model may legitimately go negative
            // under overload, so only the upper bound is a physical
            // invariant).
            assert!(x <= cfg.vdd + 1e-9, "voltage above VDD: {}", x);
        }
        // KCL at the boundary: total pad current equals total load.
        let total_load: f64 = currents.iter().sum();
        let loads = model.scatter_loads(&currents).expect("scatter");
        let total_scattered: f64 = loads.iter().sum();
        assert!((total_load - total_scattered).abs() < 1e-9);
    });
}

/// Ported proptest regression (`properties.proptest-regressions`, seed
/// `71e660…`): the shrunk counterexample proptest once found for
/// `dc_voltages_bounded_by_vdd` — minimal segment resistance, high pad
/// resistance, purely resistive pads, sparse pad array, overload scale.
/// Kept as an explicit named case so the exact input replays forever.
#[test]
fn regression_dc_bounded_overloaded_sparse_resistive_pads() {
    let chip = chip();
    let cfg = GridConfig {
        segment_resistance: 0.05,
        pad_resistance: 1.4615003353499958,
        pad_inductance_nh: 0.0,
        pad_spacing_um: 1332.4131689492922,
        ..GridConfig::default()
    };
    assert_eq!(cfg.cap_fa_pf, 45.0, "regression input assumed default caps");
    assert_eq!(cfg.cap_ba_pf, 18.0, "regression input assumed default caps");
    assert_eq!(cfg.vdd, 1.0, "regression input assumed default vdd");
    let scale = 1.220570988398042;
    let model = GridModel::build(&chip, &cfg).expect("model builds");
    let currents: Vec<f64> = chip
        .blocks()
        .iter()
        .map(|b| scale * b.nominal_power())
        .collect();
    let v = model.dc_solve(&currents).expect("dc solve");
    for &x in &v {
        assert!(x <= cfg.vdd + 1e-9, "voltage above VDD: {}", x);
    }
    let total_load: f64 = currents.iter().sum();
    let loads = model.scatter_loads(&currents).expect("scatter");
    let total_scattered: f64 = loads.iter().sum();
    assert!((total_load - total_scattered).abs() < 1e-9);
}

#[test]
fn dc_droop_monotone_in_load() {
    let chip = chip();
    forall!(cases = 64, (seg in f64_range(0.05, 0.5), pad_r in f64_range(0.2, 1.5),
                         pad_l in f64_range(0.0, 0.4), spacing in f64_range(500.0, 1500.0)) => {
        let cfg = grid_config(seg, pad_r, pad_l, spacing);
        let model = GridModel::build(&chip, &cfg).expect("model builds");
        let half: Vec<f64> = chip.blocks().iter().map(|b| 0.5 * b.nominal_power()).collect();
        let full: Vec<f64> = chip.blocks().iter().map(|b| b.nominal_power()).collect();
        let v_half = model.dc_solve(&half).expect("dc");
        let v_full = model.dc_solve(&full).expect("dc");
        for (h, f) in v_half.iter().zip(&v_full) {
            assert!(f <= &(h + 1e-9), "more load must droop more");
        }
    });
}

#[test]
fn dc_superposition_holds() {
    let chip = chip();
    forall!(cases = 64, (seg in f64_range(0.05, 0.5), pad_r in f64_range(0.2, 1.5),
                         pad_l in f64_range(0.0, 0.4), spacing in f64_range(500.0, 1500.0)) => {
        // The resistive network is linear: droop(a + b) = droop(a) + droop(b).
        let cfg = grid_config(seg, pad_r, pad_l, spacing);
        let model = GridModel::build(&chip, &cfg).expect("model builds");
        let n = chip.blocks().len();
        let mut load_a = vec![0.0; n];
        let mut load_b = vec![0.0; n];
        for (i, b) in chip.blocks().iter().enumerate() {
            if i % 2 == 0 {
                load_a[i] = b.nominal_power();
            } else {
                load_b[i] = b.nominal_power();
            }
        }
        let sum: Vec<f64> = load_a.iter().zip(&load_b).map(|(a, b)| a + b).collect();
        let va = model.dc_solve(&load_a).expect("dc");
        let vb = model.dc_solve(&load_b).expect("dc");
        let vs = model.dc_solve(&sum).expect("dc");
        for ((a, b), s) in va.iter().zip(&vb).zip(&vs) {
            let droop_sum = (cfg.vdd - a) + (cfg.vdd - b);
            let droop_direct = cfg.vdd - s;
            assert!((droop_sum - droop_direct).abs() < 1e-6,
                "superposition violated: {} vs {}", droop_sum, droop_direct);
        }
    });
}

#[test]
fn transient_settles_to_dc_under_constant_load() {
    let chip = chip();
    forall!(cases = 64, (seg in f64_range(0.05, 0.5), pad_r in f64_range(0.2, 1.5),
                         pad_l in f64_range(0.0, 0.4), spacing in f64_range(500.0, 1500.0)) => {
        let cfg = grid_config(seg, pad_r, pad_l, spacing);
        let model = GridModel::build(&chip, &cfg).expect("model builds");
        let currents: Vec<f64> = chip
            .blocks()
            .iter()
            .map(|b| 0.6 * b.nominal_power())
            .collect();
        // Initialize AT the loaded operating point: stepping with the same
        // load must stay there for any integration scheme.
        for method in [Integration::BackwardEuler, Integration::Trapezoidal] {
            let mut sim =
                TransientSimulator::with_method(&model, 1.0, &currents, method)
                    .expect("sim");
            let dc = model.dc_solve(&currents).expect("dc");
            for _ in 0..50 {
                sim.step(&currents).expect("step");
            }
            for (v, d) in sim.voltages().iter().zip(&dc) {
                assert!((v - d).abs() < 1e-6,
                    "{method}: drifted from operating point: {} vs {}", v, d);
            }
        }
    });
}

#[test]
fn pad_density_lowers_droop() {
    let chip = chip();
    forall!(cases = 64, (seg in f64_range(0.1, 0.4)) => {
        let sparse_pads = GridConfig {
            segment_resistance: seg,
            pad_spacing_um: 1400.0,
            ..GridConfig::default()
        };
        let dense_pads = GridConfig {
            segment_resistance: seg,
            pad_spacing_um: 600.0,
            ..GridConfig::default()
        };
        let currents: Vec<f64> = chip.blocks().iter().map(|b| b.nominal_power()).collect();
        let v_sparse = GridModel::build(&chip, &sparse_pads)
            .expect("model")
            .dc_solve(&currents)
            .expect("dc");
        let v_dense = GridModel::build(&chip, &dense_pads)
            .expect("model")
            .dc_solve(&currents)
            .expect("dc");
        let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(min(&v_dense) >= min(&v_sparse) - 1e-9,
            "denser pads must not deepen the worst droop");
    });
}
