//! Property-based tests of the power-grid physics invariants.

use proptest::prelude::*;
use voltsense_floorplan::{ChipConfig, ChipFloorplan};
use voltsense_powergrid::{GridConfig, GridModel, Integration, TransientSimulator};

fn grid_config() -> impl Strategy<Value = GridConfig> {
    (0.05..0.5f64, 0.2..1.5f64, 0.0..0.4f64, 500.0..1500.0f64).prop_map(
        |(seg, pad_r, pad_l, spacing)| GridConfig {
            segment_resistance: seg,
            pad_resistance: pad_r,
            pad_inductance_nh: pad_l,
            pad_spacing_um: spacing,
            ..GridConfig::default()
        },
    )
}

fn chip() -> ChipFloorplan {
    ChipFloorplan::new(&ChipConfig::small_test()).expect("chip builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dc_voltages_bounded_by_vdd(cfg in grid_config(), scale in 0.0..1.5f64) {
        let chip = chip();
        let model = GridModel::build(&chip, &cfg).expect("model builds");
        let currents: Vec<f64> = chip
            .blocks()
            .iter()
            .map(|b| scale * b.nominal_power())
            .collect();
        let v = model.dc_solve(&currents).expect("dc solve");
        for &x in &v {
            // Current sinks can only pull the passive network *down*
            // (an ideal-sink linear model may legitimately go negative
            // under overload, so only the upper bound is a physical
            // invariant).
            prop_assert!(x <= cfg.vdd + 1e-9, "voltage above VDD: {}", x);
        }
        // KCL at the boundary: total pad current equals total load.
        let total_load: f64 = currents.iter().sum();
        let loads = model.scatter_loads(&currents).expect("scatter");
        let total_scattered: f64 = loads.iter().sum();
        prop_assert!((total_load - total_scattered).abs() < 1e-9);
    }

    #[test]
    fn dc_droop_monotone_in_load(cfg in grid_config()) {
        let chip = chip();
        let model = GridModel::build(&chip, &cfg).expect("model builds");
        let half: Vec<f64> = chip.blocks().iter().map(|b| 0.5 * b.nominal_power()).collect();
        let full: Vec<f64> = chip.blocks().iter().map(|b| b.nominal_power()).collect();
        let v_half = model.dc_solve(&half).expect("dc");
        let v_full = model.dc_solve(&full).expect("dc");
        for (h, f) in v_half.iter().zip(&v_full) {
            prop_assert!(f <= &(h + 1e-9), "more load must droop more");
        }
    }

    #[test]
    fn dc_superposition_holds(cfg in grid_config()) {
        // The resistive network is linear: droop(a + b) = droop(a) + droop(b).
        let chip = chip();
        let model = GridModel::build(&chip, &cfg).expect("model builds");
        let n = chip.blocks().len();
        let mut load_a = vec![0.0; n];
        let mut load_b = vec![0.0; n];
        for (i, b) in chip.blocks().iter().enumerate() {
            if i % 2 == 0 {
                load_a[i] = b.nominal_power();
            } else {
                load_b[i] = b.nominal_power();
            }
        }
        let sum: Vec<f64> = load_a.iter().zip(&load_b).map(|(a, b)| a + b).collect();
        let va = model.dc_solve(&load_a).expect("dc");
        let vb = model.dc_solve(&load_b).expect("dc");
        let vs = model.dc_solve(&sum).expect("dc");
        for ((a, b), s) in va.iter().zip(&vb).zip(&vs) {
            let droop_sum = (cfg.vdd - a) + (cfg.vdd - b);
            let droop_direct = cfg.vdd - s;
            prop_assert!((droop_sum - droop_direct).abs() < 1e-6,
                "superposition violated: {} vs {}", droop_sum, droop_direct);
        }
    }

    #[test]
    fn transient_settles_to_dc_under_constant_load(cfg in grid_config()) {
        let chip = chip();
        let model = GridModel::build(&chip, &cfg).expect("model builds");
        let currents: Vec<f64> = chip
            .blocks()
            .iter()
            .map(|b| 0.6 * b.nominal_power())
            .collect();
        // Initialize AT the loaded operating point: stepping with the same
        // load must stay there for any integration scheme.
        for method in [Integration::BackwardEuler, Integration::Trapezoidal] {
            let mut sim =
                TransientSimulator::with_method(&model, 1.0, &currents, method)
                    .expect("sim");
            let dc = model.dc_solve(&currents).expect("dc");
            for _ in 0..50 {
                sim.step(&currents).expect("step");
            }
            for (v, d) in sim.voltages().iter().zip(&dc) {
                prop_assert!((v - d).abs() < 1e-6,
                    "{method}: drifted from operating point: {} vs {}", v, d);
            }
        }
    }

    #[test]
    fn pad_density_lowers_droop(seg in 0.1..0.4f64) {
        let chip = chip();
        let sparse_pads = GridConfig {
            segment_resistance: seg,
            pad_spacing_um: 1400.0,
            ..GridConfig::default()
        };
        let dense_pads = GridConfig {
            segment_resistance: seg,
            pad_spacing_um: 600.0,
            ..GridConfig::default()
        };
        let currents: Vec<f64> = chip.blocks().iter().map(|b| b.nominal_power()).collect();
        let v_sparse = GridModel::build(&chip, &sparse_pads)
            .expect("model")
            .dc_solve(&currents)
            .expect("dc");
        let v_dense = GridModel::build(&chip, &dense_pads)
            .expect("model")
            .dc_solve(&currents)
            .expect("dc");
        let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert!(min(&v_dense) >= min(&v_sparse) - 1e-9,
            "denser pads must not deepen the worst droop");
    }
}
