//! Voltage-map sampling: the bridge between the transient simulation and
//! the statistical methodology.
//!
//! The paper's experiment step 4 samples full-chip voltage maps at random
//! time points of each benchmark's transient simulation. [`sample_benchmark`]
//! reproduces that: it drives a [`crate::TransientSimulator`] with a
//! workload trace and snapshots all node voltages at a regular cadence
//! after a warm-up period. [`SampledMaps`] then extracts the matrices the
//! methodology consumes:
//!
//! * the **sensor-candidate matrix** `X` (one row per BA node), and
//! * the **critical-node matrix** `F` (one row per block, at the block's
//!   noise-critical node — the node with the worst observed droop).

use voltsense_floorplan::{FunctionBlock, NodeId, NodeLattice};
use voltsense_linalg::Matrix;
use voltsense_workload::WorkloadTrace;

use crate::{GridModel, PowerGridError, TransientSimulator};

/// Sampling cadence configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleConfig {
    /// Steps to simulate before the first snapshot (flushes the DC→AC
    /// transient of the initial condition).
    pub warmup_steps: usize,
    /// Snapshot every `sample_every` steps (1 = every step, for trace
    /// plots).
    pub sample_every: usize,
    /// Stop after this many snapshots (`None` = run the whole trace).
    pub max_samples: Option<usize>,
}

impl Default for SampleConfig {
    fn default() -> Self {
        SampleConfig {
            warmup_steps: 200,
            sample_every: 7,
            max_samples: None,
        }
    }
}

/// Full-chip voltage maps collected from one benchmark's transient run.
#[derive(Debug, Clone)]
pub struct SampledMaps {
    /// `nodes x samples` voltages (V).
    maps: Matrix,
    /// Simulation step index of each snapshot.
    sample_steps: Vec<usize>,
    dt_ns: f64,
}

impl SampledMaps {
    /// Number of snapshots.
    pub fn num_samples(&self) -> usize {
        self.maps.cols()
    }

    /// Number of grid nodes.
    pub fn num_nodes(&self) -> usize {
        self.maps.rows()
    }

    /// Timestep of the underlying simulation (ns).
    pub fn dt_ns(&self) -> f64 {
        self.dt_ns
    }

    /// Simulation step index of each snapshot.
    pub fn sample_steps(&self) -> &[usize] {
        &self.sample_steps
    }

    /// The raw `nodes x samples` voltage matrix.
    pub fn maps(&self) -> &Matrix {
        &self.maps
    }

    /// Voltage waveform of one node across the snapshots.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    pub fn node_waveform(&self, node: NodeId) -> &[f64] {
        self.maps.row(node.0)
    }

    /// The sensor-candidate data matrix `X`: one row per blank-area node
    /// (in `lattice.candidate_sites()` order), one column per snapshot.
    pub fn candidate_matrix(&self, lattice: &NodeLattice) -> Matrix {
        let rows: Vec<usize> = lattice.candidate_sites().iter().map(|n| n.0).collect();
        self.maps.select_rows(&rows)
    }

    /// Chooses each block's noise-critical node: the lattice node inside
    /// the block with the lowest voltage observed anywhere in the sampling
    /// period (the paper's "worst noise during a sampling simulation
    /// period").
    pub fn critical_nodes(&self, lattice: &NodeLattice, blocks: &[FunctionBlock]) -> Vec<NodeId> {
        blocks
            .iter()
            .map(|b| {
                let nodes = lattice.nodes_in_block(b.id());
                *nodes
                    .iter()
                    .min_by(|&&a, &&b| {
                        let min_a = min_of(self.maps.row(a.0));
                        let min_b = min_of(self.maps.row(b.0));
                        min_a.total_cmp(&min_b)
                    })
                    .expect("every block has lattice nodes")
            })
            .collect()
    }

    /// The critical-node data matrix `F`: row `k` is the voltage at block
    /// `k`'s critical node across all snapshots.
    pub fn critical_matrix(&self, critical_nodes: &[NodeId]) -> Matrix {
        let rows: Vec<usize> = critical_nodes.iter().map(|n| n.0).collect();
        self.maps.select_rows(&rows)
    }

    /// Lowest voltage anywhere on the chip across all snapshots.
    pub fn global_min(&self) -> f64 {
        min_of(self.maps.as_slice())
    }
}

fn min_of(values: &[f64]) -> f64 {
    values.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Runs `trace` through a transient simulation of `model` and snapshots
/// voltage maps per `config`.
///
/// The simulator is initialized to the DC operating point of the trace's
/// first time step, then stepped through the whole trace.
///
/// # Errors
///
/// * [`PowerGridError::ShapeMismatch`] if the trace's block count differs
///   from the model's.
/// * [`PowerGridError::InvalidConfig`] if `sample_every == 0` or the warmup
///   exceeds the trace.
/// * [`PowerGridError::Solver`] on numerical failure.
pub fn sample_benchmark(
    model: &GridModel,
    trace: &WorkloadTrace,
    config: &SampleConfig,
) -> Result<SampledMaps, PowerGridError> {
    if trace.num_blocks() != model.num_blocks() {
        return Err(PowerGridError::ShapeMismatch {
            what: "trace block count",
            expected: model.num_blocks(),
            actual: trace.num_blocks(),
        });
    }
    if config.sample_every == 0 {
        return Err(PowerGridError::InvalidConfig {
            what: "sample_every must be at least 1".into(),
        });
    }
    let n_steps = trace.num_steps();
    if config.warmup_steps >= n_steps {
        return Err(PowerGridError::InvalidConfig {
            what: format!(
                "warmup ({}) must be shorter than the trace ({n_steps} steps)",
                config.warmup_steps
            ),
        });
    }

    let initial: Vec<f64> = (0..trace.num_blocks()).map(|b| trace.current(b, 0)).collect();
    let mut sim = TransientSimulator::new(model, trace.dt_ns(), &initial)?;

    let post_warmup = n_steps - config.warmup_steps;
    let budget = post_warmup / config.sample_every + 1;
    let n_samples = config.max_samples.map_or(budget, |m| m.min(budget));

    let mut maps = Matrix::zeros(model.num_nodes(), n_samples);
    let mut sample_steps = Vec::with_capacity(n_samples);
    let mut currents = vec![0.0; trace.num_blocks()];
    let mut collected = 0;
    for step in 0..n_steps {
        for (b, c) in currents.iter_mut().enumerate() {
            *c = trace.current(b, step);
        }
        let v = sim.step(&currents)?;
        if step >= config.warmup_steps
            && (step - config.warmup_steps) % config.sample_every == 0
            && collected < n_samples
        {
            for (node, &vn) in v.iter().enumerate() {
                maps[(node, collected)] = vn;
            }
            sample_steps.push(step);
            collected += 1;
            if collected == n_samples {
                break;
            }
        }
    }
    // Trim if the trace ended before the budget filled (can happen with
    // max_samples > available steps).
    let maps = if collected < n_samples {
        maps.select_cols(&(0..collected).collect::<Vec<_>>())
    } else {
        maps
    };
    sample_steps.truncate(collected);

    Ok(SampledMaps {
        maps,
        sample_steps,
        dt_ns: trace.dt_ns(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GridConfig;
    use voltsense_floorplan::{ChipConfig, ChipFloorplan, NodeSite};
    use voltsense_workload::{parsec_like_suite, TraceConfig};

    fn setup() -> (ChipFloorplan, GridModel, WorkloadTrace) {
        let chip = ChipFloorplan::new(&ChipConfig::small_test()).unwrap();
        let model = GridModel::build(&chip, &GridConfig::default()).unwrap();
        let trace = WorkloadTrace::generate(
            &parsec_like_suite()[0],
            chip.blocks(),
            &TraceConfig {
                duration_ns: 800.0,
                ..TraceConfig::default()
            },
        )
        .unwrap();
        (chip, model, trace)
    }

    #[test]
    fn sampling_cadence_and_shape() {
        let (_, model, trace) = setup();
        let cfg = SampleConfig {
            warmup_steps: 100,
            sample_every: 10,
            max_samples: Some(50),
        };
        let maps = sample_benchmark(&model, &trace, &cfg).unwrap();
        assert_eq!(maps.num_samples(), 50);
        assert_eq!(maps.num_nodes(), model.num_nodes());
        assert_eq!(maps.sample_steps()[0], 100);
        assert_eq!(maps.sample_steps()[1], 110);
    }

    #[test]
    fn voltages_are_physical() {
        let (_, model, trace) = setup();
        let maps = sample_benchmark(&model, &trace, &SampleConfig::default()).unwrap();
        for &v in maps.maps().as_slice() {
            assert!(v > 0.4 && v <= 1.0 + 1e-9, "implausible voltage {v}");
        }
        assert!(maps.global_min() < 1.0);
    }

    #[test]
    fn candidate_matrix_rows_match_candidates() {
        let (chip, model, trace) = setup();
        let maps = sample_benchmark(&model, &trace, &SampleConfig::default()).unwrap();
        let x = maps.candidate_matrix(chip.lattice());
        assert_eq!(x.rows(), chip.lattice().candidate_sites().len());
        assert_eq!(x.cols(), maps.num_samples());
        // Spot check: row 0 equals the waveform of the first candidate.
        let first = chip.lattice().candidate_sites()[0];
        assert_eq!(x.row(0), maps.node_waveform(first));
    }

    #[test]
    fn critical_nodes_are_inside_their_block() {
        let (chip, model, trace) = setup();
        let maps = sample_benchmark(&model, &trace, &SampleConfig::default()).unwrap();
        let crit = maps.critical_nodes(chip.lattice(), chip.blocks());
        assert_eq!(crit.len(), chip.blocks().len());
        for (b, nid) in chip.blocks().iter().zip(&crit) {
            assert_eq!(
                chip.lattice().site(*nid),
                NodeSite::FunctionArea(b.id()),
                "critical node of {} not inside it",
                b.id()
            );
        }
    }

    #[test]
    fn critical_node_has_block_worst_min() {
        let (chip, model, trace) = setup();
        let maps = sample_benchmark(&model, &trace, &SampleConfig::default()).unwrap();
        let crit = maps.critical_nodes(chip.lattice(), chip.blocks());
        for (b, nid) in chip.blocks().iter().zip(&crit) {
            let crit_min = maps
                .node_waveform(*nid)
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min);
            for other in chip.lattice().nodes_in_block(b.id()) {
                let other_min = maps
                    .node_waveform(*other)
                    .iter()
                    .copied()
                    .fold(f64::INFINITY, f64::min);
                assert!(crit_min <= other_min + 1e-15);
            }
        }
    }

    #[test]
    fn critical_matrix_selects_rows() {
        let (chip, model, trace) = setup();
        let maps = sample_benchmark(&model, &trace, &SampleConfig::default()).unwrap();
        let crit = maps.critical_nodes(chip.lattice(), chip.blocks());
        let f = maps.critical_matrix(&crit);
        assert_eq!(f.rows(), chip.blocks().len());
        assert_eq!(f.row(0), maps.node_waveform(crit[0]));
    }

    #[test]
    fn invalid_configs_rejected() {
        let (_, model, trace) = setup();
        let cfg = SampleConfig {
            sample_every: 0,
            ..SampleConfig::default()
        };
        assert!(sample_benchmark(&model, &trace, &cfg).is_err());
        let cfg = SampleConfig {
            warmup_steps: 10_000,
            ..SampleConfig::default()
        };
        assert!(sample_benchmark(&model, &trace, &cfg).is_err());
    }

    #[test]
    fn every_step_sampling_gives_contiguous_trace() {
        let (_, model, trace) = setup();
        let cfg = SampleConfig {
            warmup_steps: 0,
            sample_every: 1,
            max_samples: Some(100),
        };
        let maps = sample_benchmark(&model, &trace, &cfg).unwrap();
        assert_eq!(maps.num_samples(), 100);
        assert_eq!(maps.sample_steps(), (0..100).collect::<Vec<_>>());
    }
}
