use crate::PowerGridError;

/// Electrical parameters of the power grid.
///
/// Defaults are tuned so the paper-scale chip under the PARSEC-like suite
/// exhibits realistic behaviour: nominal droops of a few tens of
/// millivolts, with occasional excursions below the 0.85 V emergency
/// threshold during power-gating di/dt events (the calibration test in
/// `tests/calibration.rs` pins this down).
#[derive(Debug, Clone, PartialEq)]
pub struct GridConfig {
    /// Resistance of one mesh segment between adjacent lattice nodes (Ω).
    pub segment_resistance: f64,
    /// Series resistance of one package pad branch (Ω).
    pub pad_resistance: f64,
    /// Series inductance of one package pad branch (nH). Zero disables the
    /// inductor (purely resistive pads).
    pub pad_inductance_nh: f64,
    /// Physical spacing of the package pad array in micrometres (pads are
    /// snapped to the nearest lattice node). Expressing this in µm rather
    /// than lattice nodes keeps the pad density — and therefore the droop
    /// depth — independent of the lattice resolution.
    pub pad_spacing_um: f64,
    /// Decoupling capacitance per function-area node (pF).
    pub cap_fa_pf: f64,
    /// Decoupling capacitance per blank-area node (pF).
    pub cap_ba_pf: f64,
    /// Ideal supply voltage (V).
    pub vdd: f64,
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig {
            segment_resistance: 0.16,
            pad_resistance: 0.48,
            pad_inductance_nh: 0.28,
            pad_spacing_um: 1000.0,
            cap_fa_pf: 45.0,
            cap_ba_pf: 18.0,
            vdd: 1.0,
        }
    }
}

impl GridConfig {
    /// Variant tuned for the 2-core test chip
    /// ([`voltsense_floorplan::ChipConfig::small_test`]): a small die
    /// droops less through mesh spreading, so its package is given a
    /// weaker pad network to land in the same voltage-emergency regime
    /// (~10–30% of samples) as the paper-scale chip under the default
    /// configuration. Pinned by the calibration tests.
    pub fn small_test() -> Self {
        GridConfig {
            segment_resistance: 0.27,
            pad_resistance: 0.84,
            ..GridConfig::default()
        }
    }

    pub(crate) fn validate(&self) -> Result<(), PowerGridError> {
        let ok = self.segment_resistance > 0.0
            && self.pad_resistance > 0.0
            && self.pad_inductance_nh >= 0.0
            && self.pad_spacing_um > 0.0
            && self.cap_fa_pf > 0.0
            && self.cap_ba_pf > 0.0
            && self.vdd > 0.0
            && [
                self.segment_resistance,
                self.pad_resistance,
                self.pad_inductance_nh,
                self.cap_fa_pf,
                self.cap_ba_pf,
                self.vdd,
            ]
            .iter()
            .all(|v| v.is_finite());
        if ok {
            Ok(())
        } else {
            Err(PowerGridError::InvalidConfig {
                what: format!("grid config out of range: {self:?}"),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        GridConfig::default().validate().unwrap();
    }

    #[test]
    fn bad_values_rejected() {
        let mut c = GridConfig::default();
        c.segment_resistance = 0.0;
        assert!(c.validate().is_err());
        let mut c = GridConfig::default();
        c.pad_spacing_um = 0.0;
        assert!(c.validate().is_err());
        let mut c = GridConfig::default();
        c.vdd = f64::NAN;
        assert!(c.validate().is_err());
        let mut c = GridConfig::default();
        c.pad_inductance_nh = -1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn zero_inductance_is_allowed() {
        let mut c = GridConfig::default();
        c.pad_inductance_nh = 0.0;
        c.validate().unwrap();
    }
}
