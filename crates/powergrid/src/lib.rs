//! RC power-delivery-network model and transient simulation.
//!
//! This crate is the stand-in for the paper's full-chip power-grid
//! transient simulation (its experiment step 3). It builds a standard
//! modified-nodal-analysis model of the on-chip power grid:
//!
//! * a 2-D resistor mesh over the [`voltsense_floorplan::NodeLattice`];
//! * decoupling capacitance to ground at every node (denser under blocks);
//! * package pads on a regular sub-array, each a series R–L branch to the
//!   ideal VDD supply (the inductance produces the mid-frequency droop
//!   resonance that makes di/dt noise interesting);
//! * per-block load currents from a [`voltsense_workload::WorkloadTrace`],
//!   spread uniformly over the lattice nodes inside each block.
//!
//! Backward-Euler integration keeps the system matrix constant, so the
//! [`TransientSimulator`] factors it once (sparse envelope Cholesky after
//! RCM) and performs one triangular solve per timestep.
//!
//! [`sample_benchmark`] runs a benchmark end to end and collects the
//! full-chip voltage maps the methodology trains on.
//!
//! # Example
//!
//! ```
//! use voltsense_floorplan::{ChipConfig, ChipFloorplan};
//! use voltsense_powergrid::{GridConfig, GridModel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let chip = ChipFloorplan::new(&ChipConfig::small_test())?;
//! let model = GridModel::build(&chip, &GridConfig::default())?;
//! // With no load every node sits at VDD.
//! let v = model.dc_solve(&vec![0.0; chip.blocks().len()])?;
//! assert!(v.iter().all(|&x| (x - 1.0).abs() < 1e-9));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
mod integrator;
mod model;
mod sampling;
mod transient;

pub use config::GridConfig;
pub use error::PowerGridError;
pub use integrator::Integration;
pub use model::GridModel;
pub use sampling::{sample_benchmark, SampleConfig, SampledMaps};
pub use transient::TransientSimulator;
