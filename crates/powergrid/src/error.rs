use std::error::Error;
use std::fmt;

use voltsense_sparse::SparseError;

/// Error type for power-grid modelling and simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PowerGridError {
    /// A grid parameter was out of range.
    InvalidConfig {
        /// Human-readable description of the offending parameter.
        what: String,
    },
    /// A load vector or trace did not match the model.
    ShapeMismatch {
        /// Description of the failing input.
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// The underlying sparse solver failed.
    Solver(SparseError),
}

impl fmt::Display for PowerGridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerGridError::InvalidConfig { what } => {
                write!(f, "invalid grid configuration: {what}")
            }
            PowerGridError::ShapeMismatch {
                what,
                expected,
                actual,
            } => write!(f, "{what}: expected length {expected}, got {actual}"),
            PowerGridError::Solver(e) => write!(f, "sparse solver failed: {e}"),
        }
    }
}

impl Error for PowerGridError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PowerGridError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SparseError> for PowerGridError {
    fn from(e: SparseError) -> Self {
        PowerGridError::Solver(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_error_chains_source() {
        let err = PowerGridError::from(SparseError::NotSquare { shape: (2, 3) });
        assert!(err.source().is_some());
        assert!(err.to_string().contains("sparse solver"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PowerGridError>();
    }
}
