use voltsense_floorplan::{ChipFloorplan, NodeSite};
use voltsense_sparse::{cg, CsrMatrix, TripletMatrix};

use crate::{GridConfig, PowerGridError};

/// A pad branch: lattice node index plus the series R (Ω) and L (H) to the
/// ideal supply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Pad {
    pub node: usize,
    pub resistance: f64,
    pub inductance: f64,
}

/// The assembled electrical model of the chip's power grid.
///
/// Holds the mesh conductance matrix (without pads), the per-node
/// capacitance, the pad branches and the block→node load distribution.
/// [`crate::TransientSimulator`] consumes it for time-domain analysis;
/// [`GridModel::dc_solve`] provides the operating point.
#[derive(Debug, Clone)]
pub struct GridModel {
    config: GridConfig,
    num_nodes: usize,
    num_blocks: usize,
    /// Mesh conductances only (pads stamped separately — their treatment
    /// differs between DC and transient).
    mesh: CsrMatrix,
    /// Per-node capacitance (F).
    caps: Vec<f64>,
    pads: Vec<Pad>,
    /// For each block: the lattice nodes carrying its current and the share
    /// (1/count) each receives.
    block_nodes: Vec<Vec<usize>>,
}

impl GridModel {
    /// Builds the grid model for a chip floorplan.
    ///
    /// # Errors
    ///
    /// Returns [`PowerGridError::InvalidConfig`] if the configuration is
    /// out of range or produces no pads.
    pub fn build(chip: &ChipFloorplan, config: &GridConfig) -> Result<Self, PowerGridError> {
        config.validate()?;
        let lattice = chip.lattice();
        let n = lattice.len();
        let g_seg = 1.0 / config.segment_resistance;

        // Mesh: a resistor between every pair of adjacent lattice nodes.
        let mut t = TripletMatrix::with_capacity(n, n, 5 * n);
        for (id, _) in lattice.iter() {
            let (ix, iy) = lattice.coords(id);
            // Stamp each edge once (to the right and up).
            if let Some(right) = lattice.node_at(ix + 1, iy) {
                t.stamp_conductance(id.0, right.0, g_seg);
            }
            if let Some(up) = lattice.node_at(ix, iy + 1) {
                t.stamp_conductance(id.0, up.0, g_seg);
            }
        }
        let mesh = t.to_csr();

        // Capacitance: denser decap under blocks.
        let caps: Vec<f64> = (0..n)
            .map(|i| match lattice.site(voltsense_floorplan::NodeId(i)) {
                NodeSite::FunctionArea(_) => config.cap_fa_pf * 1e-12,
                NodeSite::BlankArea => config.cap_ba_pf * 1e-12,
            })
            .collect();

        // Pads on a regular sub-array (offset by half a pitch so pads do
        // not all sit on the die boundary). The configured physical
        // spacing is snapped to the lattice.
        let pitch = (config.pad_spacing_um / lattice.pitch()).round().max(1.0) as usize;
        let off = pitch / 2;
        let mut pads = Vec::new();
        for iy in (off..lattice.ny()).step_by(pitch) {
            for ix in (off..lattice.nx()).step_by(pitch) {
                let node = lattice
                    .node_at(ix, iy)
                    .expect("pad coordinates are in range");
                pads.push(Pad {
                    node: node.0,
                    resistance: config.pad_resistance,
                    inductance: config.pad_inductance_nh * 1e-9,
                });
            }
        }
        if pads.is_empty() {
            return Err(PowerGridError::InvalidConfig {
                what: format!(
                    "pad pitch {pitch} produced no pads on a {}x{} lattice",
                    lattice.nx(),
                    lattice.ny()
                ),
            });
        }

        // Block loads: uniform distribution over the block's nodes.
        let block_nodes: Vec<Vec<usize>> = chip
            .blocks()
            .iter()
            .map(|b| {
                lattice
                    .nodes_in_block(b.id())
                    .iter()
                    .map(|nid| nid.0)
                    .collect()
            })
            .collect();

        Ok(GridModel {
            config: config.clone(),
            num_nodes: n,
            num_blocks: block_nodes.len(),
            mesh,
            caps,
            pads,
            block_nodes,
        })
    }

    /// The grid configuration.
    pub fn config(&self) -> &GridConfig {
        &self.config
    }

    /// Number of lattice nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of function blocks drawing current.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Number of package pads.
    pub fn num_pads(&self) -> usize {
        self.pads.len()
    }

    pub(crate) fn mesh(&self) -> &CsrMatrix {
        &self.mesh
    }

    pub(crate) fn caps(&self) -> &[f64] {
        &self.caps
    }

    pub(crate) fn pads(&self) -> &[Pad] {
        &self.pads
    }

    /// For each block (in block order): the lattice node indices that
    /// carry its load current.
    pub fn block_nodes(&self) -> &[Vec<usize>] {
        &self.block_nodes
    }

    /// Scatters per-block currents into a per-node injection vector
    /// (amperes drawn from each node).
    ///
    /// # Errors
    ///
    /// Returns [`PowerGridError::ShapeMismatch`] if
    /// `block_currents.len() != self.num_blocks()`.
    pub fn scatter_loads(&self, block_currents: &[f64]) -> Result<Vec<f64>, PowerGridError> {
        let mut loads = vec![0.0; self.num_nodes];
        self.scatter_loads_into(block_currents, &mut loads)?;
        Ok(loads)
    }

    /// Allocation-free variant of [`GridModel::scatter_loads`].
    ///
    /// # Errors
    ///
    /// Returns [`PowerGridError::ShapeMismatch`] on length mismatch of
    /// either argument.
    pub fn scatter_loads_into(
        &self,
        block_currents: &[f64],
        loads: &mut [f64],
    ) -> Result<(), PowerGridError> {
        if block_currents.len() != self.num_blocks {
            return Err(PowerGridError::ShapeMismatch {
                what: "block currents",
                expected: self.num_blocks,
                actual: block_currents.len(),
            });
        }
        if loads.len() != self.num_nodes {
            return Err(PowerGridError::ShapeMismatch {
                what: "load vector",
                expected: self.num_nodes,
                actual: loads.len(),
            });
        }
        loads.fill(0.0);
        for (nodes, &current) in self.block_nodes.iter().zip(block_currents) {
            let share = current / nodes.len() as f64;
            for &node in nodes {
                loads[node] += share;
            }
        }
        Ok(())
    }

    /// Solves the DC operating point for the given per-block currents
    /// (inductors treated as shorts; pads are their series resistance).
    ///
    /// # Errors
    ///
    /// Propagates load-shape and solver errors.
    pub fn dc_solve(&self, block_currents: &[f64]) -> Result<Vec<f64>, PowerGridError> {
        let loads = self.scatter_loads(block_currents)?;
        let n = self.num_nodes;
        // System: (G_mesh + G_pads) v = g_pad·VDD − loads.
        let mut t = TripletMatrix::with_capacity(n, n, self.mesh.nnz() + self.pads.len());
        for i in 0..n {
            for (j, g) in self.mesh.row_iter(i) {
                t.add(i, j, g);
            }
        }
        let mut rhs: Vec<f64> = loads.iter().map(|&l| -l).collect();
        for pad in &self.pads {
            let g = 1.0 / pad.resistance;
            t.stamp_grounded_conductance(pad.node, g);
            rhs[pad.node] += g * self.config.vdd;
        }
        let a = t.to_csr();
        // CG is fine for a one-off solve; the transient path uses the
        // direct factorization.
        let sol = cg::solve(
            &a,
            &rhs,
            &cg::CgOptions {
                max_iterations: Some(20 * n),
                tolerance: 1e-12,
                // IC(0) pays for itself on the one-off DC solve too.
                preconditioner: cg::Preconditioner::IncompleteCholesky,
            },
        )?;
        Ok(sol.x)
    }

    /// DC pad currents consistent with a DC node-voltage solution, used to
    /// initialize the transient inductor states.
    pub(crate) fn dc_pad_currents(&self, v: &[f64]) -> Vec<f64> {
        self.pads
            .iter()
            .map(|p| (self.config.vdd - v[p.node]) / p.resistance)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltsense_floorplan::{ChipConfig, ChipFloorplan};

    fn model() -> (ChipFloorplan, GridModel) {
        let chip = ChipFloorplan::new(&ChipConfig::small_test()).unwrap();
        let model = GridModel::build(&chip, &GridConfig::default()).unwrap();
        (chip, model)
    }

    #[test]
    fn dimensions_match_floorplan() {
        let (chip, model) = model();
        assert_eq!(model.num_nodes(), chip.lattice().len());
        assert_eq!(model.num_blocks(), chip.blocks().len());
        assert!(model.num_pads() > 0);
    }

    #[test]
    fn mesh_is_symmetric_with_zero_row_sums() {
        let (_, model) = model();
        let mesh = model.mesh();
        assert!(mesh.is_symmetric(1e-12));
        // A pure resistor mesh has zero row sums (no ground path).
        for i in 0..mesh.rows() {
            let s: f64 = mesh.row_iter(i).map(|(_, v)| v).sum();
            assert!(s.abs() < 1e-9, "row {i} sum {s}");
        }
    }

    #[test]
    fn no_load_dc_is_vdd_everywhere() {
        let (chip, model) = model();
        let v = model.dc_solve(&vec![0.0; chip.blocks().len()]).unwrap();
        for &x in &v {
            assert!((x - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn loaded_dc_droops_below_vdd() {
        let (chip, model) = model();
        // Nominal power of every block as its current (VDD = 1).
        let currents: Vec<f64> = chip.blocks().iter().map(|b| b.nominal_power()).collect();
        let v = model.dc_solve(&currents).unwrap();
        let min = v.iter().copied().fold(f64::INFINITY, f64::min);
        let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(max < 1.0, "all nodes must droop below VDD, max {max}");
        assert!(min > 0.5, "grid has collapsed, min {min}");
        assert!(min < 0.99, "no visible droop, min {min}");
    }

    #[test]
    fn droop_is_worst_near_blocks() {
        let (chip, model) = model();
        let currents: Vec<f64> = chip.blocks().iter().map(|b| b.nominal_power()).collect();
        let v = model.dc_solve(&currents).unwrap();
        // Average FA voltage below average BA voltage.
        let lattice = chip.lattice();
        let mut fa = (0.0, 0usize);
        let mut ba = (0.0, 0usize);
        for (id, site) in lattice.iter() {
            match site {
                NodeSite::FunctionArea(_) => {
                    fa.0 += v[id.0];
                    fa.1 += 1;
                }
                NodeSite::BlankArea => {
                    ba.0 += v[id.0];
                    ba.1 += 1;
                }
            }
        }
        assert!(fa.0 / fa.1 as f64 <= ba.0 / ba.1 as f64);
    }

    #[test]
    fn scatter_conserves_current() {
        let (chip, model) = model();
        let currents: Vec<f64> = (0..chip.blocks().len()).map(|i| i as f64 * 0.01).collect();
        let loads = model.scatter_loads(&currents).unwrap();
        let total_in: f64 = currents.iter().sum();
        let total_out: f64 = loads.iter().sum();
        assert!((total_in - total_out).abs() < 1e-9);
    }

    #[test]
    fn scatter_rejects_wrong_len() {
        let (_, model) = model();
        assert!(model.scatter_loads(&[1.0]).is_err());
        let mut short = vec![0.0; 3];
        assert!(model
            .scatter_loads_into(&vec![0.0; model.num_blocks()], &mut short)
            .is_err());
    }

    #[test]
    fn absurd_pad_spacing_is_rejected() {
        let chip = ChipFloorplan::new(&ChipConfig::small_test()).unwrap();
        let mut cfg = GridConfig::default();
        // Wider than the die: the half-pitch offset falls outside the
        // lattice, so no pads can be placed.
        cfg.pad_spacing_um = 50_000.0;
        let r = GridModel::build(&chip, &cfg);
        assert!(r.is_err());
    }

    #[test]
    fn pad_density_tracks_physical_spacing_not_lattice() {
        // Halving the pad spacing should roughly quadruple the pad count,
        // independent of lattice resolution.
        let chip = ChipFloorplan::new(&ChipConfig::small_test()).unwrap();
        let coarse = GridModel::build(&chip, &GridConfig::default()).unwrap();
        let mut cfg = GridConfig::default();
        cfg.pad_spacing_um /= 2.0;
        let dense = GridModel::build(&chip, &cfg).unwrap();
        assert!(dense.num_pads() > 2 * coarse.num_pads());
    }
}
