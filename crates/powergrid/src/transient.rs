use voltsense_sparse::{EnvelopeCholesky, TripletMatrix};
use voltsense_telemetry as telemetry;

use crate::integrator::Integration;
use crate::model::GridModel;
use crate::PowerGridError;

/// Backward-Euler transient engine for a [`GridModel`].
///
/// The BE companion models keep the system matrix
/// `A = G_mesh + C/dt + Σ g_pad` constant, so construction factors it once
/// and every [`TransientSimulator::step`] costs a single sparse triangular
/// solve — the standard approach for power-grid transient analysis.
///
/// Pad branches (series R–L to VDD) use the BE inductor companion:
/// with `a = 1 / (1 + dt·R/L)` and `g_eff = (dt/L)·a`,
/// `i_{n+1} = a·i_n + g_eff (VDD − v_{n+1})`, stamped as conductance
/// `g_eff` plus a history current source. `L = 0` degenerates to a purely
/// resistive pad (`a = 0`, `g_eff = 1/R`).
///
/// # Example
///
/// ```
/// use voltsense_floorplan::{ChipConfig, ChipFloorplan};
/// use voltsense_powergrid::{GridConfig, GridModel, TransientSimulator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let chip = ChipFloorplan::new(&ChipConfig::small_test())?;
/// let model = GridModel::build(&chip, &GridConfig::default())?;
/// let idle = vec![0.0; chip.blocks().len()];
/// let mut sim = TransientSimulator::new(&model, 1.0, &idle)?;
/// let v = sim.step(&idle)?;
/// assert!((v[0] - 1.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TransientSimulator<'m> {
    model: &'m GridModel,
    method: Integration,
    chol: EnvelopeCholesky,
    /// Capacitor companion conductance per node: `C/dt` (BE) or `2C/dt`
    /// (trapezoidal).
    cap_g: Vec<f64>,
    /// Capacitor branch currents — state used by the trapezoidal rule
    /// (zero-length for backward Euler).
    cap_current: Vec<f64>,
    /// Per pad: history coefficient `a` and effective conductance.
    pad_a: Vec<f64>,
    pad_g: Vec<f64>,
    /// Inductor currents (state).
    pad_current: Vec<f64>,
    /// Node voltages (state).
    voltages: Vec<f64>,
    /// Scratch buffers for the per-step solve.
    rhs: Vec<f64>,
    scratch: Vec<f64>,
    next_v: Vec<f64>,
    loads: Vec<f64>,
    dt_s: f64,
    time_s: f64,
}

impl<'m> TransientSimulator<'m> {
    /// Creates the engine with timestep `dt_ns` (nanoseconds), initialized
    /// to the DC operating point of `initial_block_currents`.
    ///
    /// # Errors
    ///
    /// * [`PowerGridError::InvalidConfig`] for a non-positive timestep.
    /// * [`PowerGridError::ShapeMismatch`] if the initial currents don't
    ///   match the model's block count.
    /// * [`PowerGridError::Solver`] if factorization fails.
    pub fn new(
        model: &'m GridModel,
        dt_ns: f64,
        initial_block_currents: &[f64],
    ) -> Result<Self, PowerGridError> {
        Self::with_method(model, dt_ns, initial_block_currents, Integration::BackwardEuler)
    }

    /// As [`TransientSimulator::new`] with an explicit integration scheme.
    ///
    /// # Errors
    ///
    /// Same as [`TransientSimulator::new`].
    pub fn with_method(
        model: &'m GridModel,
        dt_ns: f64,
        initial_block_currents: &[f64],
        method: Integration,
    ) -> Result<Self, PowerGridError> {
        if !(dt_ns > 0.0) || !dt_ns.is_finite() {
            return Err(PowerGridError::InvalidConfig {
                what: format!("timestep must be positive, got {dt_ns} ns"),
            });
        }
        let dt_s = dt_ns * 1e-9;
        let n = model.num_nodes();

        // Capacitor companion conductance: C/dt (BE) or 2C/dt (trap).
        let cap_factor = match method {
            Integration::BackwardEuler => 1.0,
            Integration::Trapezoidal => 2.0,
        };
        let cap_g: Vec<f64> = model.caps().iter().map(|&c| cap_factor * c / dt_s).collect();
        let cap_current = match method {
            Integration::BackwardEuler => Vec::new(),
            // At the DC operating point capacitor currents are zero.
            Integration::Trapezoidal => vec![0.0; n],
        };
        let mut pad_a = Vec::with_capacity(model.pads().len());
        let mut pad_g = Vec::with_capacity(model.pads().len());
        for pad in model.pads() {
            if pad.inductance > 0.0 {
                match method {
                    Integration::BackwardEuler => {
                        let a = 1.0 / (1.0 + dt_s * pad.resistance / pad.inductance);
                        pad_a.push(a);
                        pad_g.push(dt_s / pad.inductance * a);
                    }
                    Integration::Trapezoidal => {
                        let x = dt_s * pad.resistance / (2.0 * pad.inductance);
                        pad_a.push((1.0 - x) / (1.0 + x));
                        pad_g.push(dt_s / (2.0 * pad.inductance) / (1.0 + x));
                    }
                }
            } else {
                // L = 0: a memoryless resistive branch under either scheme.
                pad_a.push(0.0);
                pad_g.push(1.0 / pad.resistance);
            }
        }

        // Assemble and factor A = G_mesh + G_cap + Σ g_pad.
        let mut t = TripletMatrix::with_capacity(n, n, model.mesh().nnz() + n);
        for i in 0..n {
            for (j, g) in model.mesh().row_iter(i) {
                t.add(i, j, g);
            }
            t.add(i, i, cap_g[i]);
        }
        for (pad, &g) in model.pads().iter().zip(&pad_g) {
            t.add(pad.node, pad.node, g);
        }
        let chol = {
            let _span = telemetry::span("transient.factor");
            EnvelopeCholesky::factor(&t.to_csr())?
        };

        // DC initial condition.
        let voltages = model.dc_solve(initial_block_currents)?;
        let pad_current = model.dc_pad_currents(&voltages);

        Ok(TransientSimulator {
            model,
            method,
            chol,
            cap_g,
            cap_current,
            pad_a,
            pad_g,
            pad_current,
            voltages,
            rhs: vec![0.0; n],
            scratch: vec![0.0; n],
            next_v: vec![0.0; n],
            loads: vec![0.0; n],
            dt_s,
            time_s: 0.0,
        })
    }

    /// The integration scheme in use.
    pub fn method(&self) -> Integration {
        self.method
    }

    /// Timestep in seconds.
    pub fn dt_s(&self) -> f64 {
        self.dt_s
    }

    /// Simulated time in seconds.
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// Current node voltages (V).
    pub fn voltages(&self) -> &[f64] {
        &self.voltages
    }

    /// Current pad (inductor) currents (A).
    pub fn pad_currents(&self) -> &[f64] {
        &self.pad_current
    }

    /// Advances one timestep with the given per-block currents at the new
    /// time point, returning the new node voltages.
    ///
    /// # Errors
    ///
    /// Returns [`PowerGridError::ShapeMismatch`] if the current vector does
    /// not match the block count.
    pub fn step(&mut self, block_currents: &[f64]) -> Result<&[f64], PowerGridError> {
        let _span = telemetry::span("transient.step");
        self.model
            .scatter_loads_into(block_currents, &mut self.loads)?;
        let vdd = self.model.config().vdd;

        // RHS = G_cap·v_n (+ cap history for trap) + pad history − loads.
        for i in 0..self.rhs.len() {
            self.rhs[i] = self.cap_g[i] * self.voltages[i] - self.loads[i];
        }
        if self.method == Integration::Trapezoidal {
            for (r, &ic) in self.rhs.iter_mut().zip(&self.cap_current) {
                *r += ic;
            }
        }
        for ((pad, (&a, &g)), &i_l) in self
            .model
            .pads()
            .iter()
            .zip(self.pad_a.iter().zip(&self.pad_g))
            .zip(&self.pad_current)
        {
            match self.method {
                Integration::BackwardEuler => {
                    self.rhs[pad.node] += a * i_l + g * vdd;
                }
                Integration::Trapezoidal => {
                    if pad.inductance > 0.0 {
                        self.rhs[pad.node] +=
                            a * i_l + g * (2.0 * vdd - self.voltages[pad.node]);
                    } else {
                        self.rhs[pad.node] += g * vdd;
                    }
                }
            }
        }

        self.chol
            .solve_into(&self.rhs, &mut self.next_v, &mut self.scratch)?;

        // Update states from (v_n, v_{n+1}).
        if self.method == Integration::Trapezoidal {
            for ((ic, &gc), (vn, vn1)) in self
                .cap_current
                .iter_mut()
                .zip(&self.cap_g)
                .zip(self.voltages.iter().zip(self.next_v.iter()))
            {
                *ic = gc * (vn1 - vn) - *ic;
            }
        }
        for ((pad, (&a, &g)), i_l) in self
            .model
            .pads()
            .iter()
            .zip(self.pad_a.iter().zip(&self.pad_g))
            .zip(self.pad_current.iter_mut())
        {
            match self.method {
                Integration::BackwardEuler => {
                    *i_l = a * *i_l + g * (vdd - self.next_v[pad.node]);
                }
                Integration::Trapezoidal => {
                    if pad.inductance > 0.0 {
                        *i_l = a * *i_l
                            + g * (2.0 * vdd
                                - self.voltages[pad.node]
                                - self.next_v[pad.node]);
                    } else {
                        *i_l = g * (vdd - self.next_v[pad.node]);
                    }
                }
            }
        }
        std::mem::swap(&mut self.voltages, &mut self.next_v);
        self.time_s += self.dt_s;
        Ok(&self.voltages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GridConfig;
    use voltsense_floorplan::{ChipConfig, ChipFloorplan};

    fn setup() -> (ChipFloorplan, GridModel) {
        let chip = ChipFloorplan::new(&ChipConfig::small_test()).unwrap();
        let model = GridModel::build(&chip, &GridConfig::default()).unwrap();
        (chip, model)
    }

    #[test]
    fn zero_load_stays_at_vdd() {
        let (chip, model) = setup();
        let idle = vec![0.0; chip.blocks().len()];
        let mut sim = TransientSimulator::new(&model, 1.0, &idle).unwrap();
        for _ in 0..50 {
            sim.step(&idle).unwrap();
        }
        for &v in sim.voltages() {
            assert!((v - 1.0).abs() < 1e-9, "voltage drifted: {v}");
        }
    }

    #[test]
    fn constant_load_converges_to_dc() {
        let (chip, model) = setup();
        let currents: Vec<f64> = chip
            .blocks()
            .iter()
            .map(|b| 0.5 * b.nominal_power())
            .collect();
        let idle = vec![0.0; chip.blocks().len()];
        // Start at the idle operating point, then apply a constant load;
        // the transient must settle to the loaded DC solution.
        let mut sim = TransientSimulator::new(&model, 1.0, &idle).unwrap();
        for _ in 0..3000 {
            sim.step(&currents).unwrap();
        }
        let dc = model.dc_solve(&currents).unwrap();
        for (v, d) in sim.voltages().iter().zip(&dc) {
            assert!((v - d).abs() < 1e-4, "transient {v} vs dc {d}");
        }
    }

    #[test]
    fn step_load_causes_inductive_undershoot_when_underdamped() {
        // The default pads are overdamped (L/R well below one timestep),
        // so verify the inductor companion model on an explicitly
        // underdamped configuration: large L, small R.
        let chip = ChipFloorplan::new(&ChipConfig::small_test()).unwrap();
        let mut cfg = GridConfig::default();
        cfg.pad_inductance_nh = 4.0;
        cfg.pad_resistance = 0.15;
        let model = GridModel::build(&chip, &cfg).unwrap();
        let idle = vec![0.0; chip.blocks().len()];
        let full: Vec<f64> = chip.blocks().iter().map(|b| b.nominal_power()).collect();
        let mut sim = TransientSimulator::new(&model, 1.0, &idle).unwrap();
        // Apply the step and track the minimum voltage over time.
        let mut global_min = f64::INFINITY;
        for _ in 0..4000 {
            let v = sim.step(&full).unwrap();
            let m = v.iter().copied().fold(f64::INFINITY, f64::min);
            global_min = global_min.min(m);
        }
        let dc = model.dc_solve(&full).unwrap();
        let dc_min = dc.iter().copied().fold(f64::INFINITY, f64::min);
        // The di/dt event must undershoot the final DC level (inductive
        // droop), the first-droop phenomenon the paper monitors.
        assert!(
            global_min < dc_min - 1e-3,
            "no inductive undershoot: transient min {global_min}, dc min {dc_min}"
        );
    }

    #[test]
    fn resistive_pads_have_no_undershoot() {
        let (chip, _) = setup();
        let mut cfg = GridConfig::default();
        cfg.pad_inductance_nh = 0.0;
        let model = GridModel::build(&chip, &cfg).unwrap();
        let idle = vec![0.0; chip.blocks().len()];
        let full: Vec<f64> = chip.blocks().iter().map(|b| b.nominal_power()).collect();
        let mut sim = TransientSimulator::new(&model, 1.0, &idle).unwrap();
        let mut global_min = f64::INFINITY;
        for _ in 0..2000 {
            let v = sim.step(&full).unwrap();
            global_min = global_min.min(v.iter().copied().fold(f64::INFINITY, f64::min));
        }
        let dc = model.dc_solve(&full).unwrap();
        let dc_min = dc.iter().copied().fold(f64::INFINITY, f64::min);
        // RC-only networks approach DC monotonically (no ringing): the
        // transient never dips measurably below the final DC level.
        assert!(global_min >= dc_min - 1e-6);
    }

    /// Runs a smooth raised-cosine load ramp (0 → 20 mA per block over
    /// 10 ns) and returns the voltage of node 0 after `t_ns` nanoseconds.
    /// The smooth input avoids exciting the grid's sub-timestep stiff RC
    /// modes, so integration error is dominated by the resolvable pad
    /// dynamics and the schemes' order is observable.
    fn node0_after(
        model: &GridModel,
        blocks: usize,
        method: Integration,
        dt_ns: f64,
        t_ns: f64,
    ) -> f64 {
        let idle = vec![0.0; blocks];
        let mut sim = TransientSimulator::with_method(model, dt_ns, &idle, method).unwrap();
        let steps = (t_ns / dt_ns).round() as usize;
        let ramp_ns = 10.0;
        let mut currents = vec![0.0; blocks];
        let mut v0 = 0.0;
        for s in 0..steps {
            let t = (s + 1) as f64 * dt_ns;
            let scale = if t >= ramp_ns {
                1.0
            } else {
                0.5 * (1.0 - (std::f64::consts::PI * t / ramp_ns).cos())
            };
            for c in currents.iter_mut() {
                *c = 0.02 * scale;
            }
            v0 = sim.step(&currents).unwrap()[0];
        }
        v0
    }

    #[test]
    fn trapezoidal_matches_be_steady_state() {
        let (chip, model) = setup();
        let currents: Vec<f64> = chip
            .blocks()
            .iter()
            .map(|b| 0.4 * b.nominal_power())
            .collect();
        let idle = vec![0.0; chip.blocks().len()];
        let mut be = TransientSimulator::new(&model, 1.0, &idle).unwrap();
        let mut tr =
            TransientSimulator::with_method(&model, 1.0, &idle, Integration::Trapezoidal)
                .unwrap();
        for _ in 0..3000 {
            be.step(&currents).unwrap();
            tr.step(&currents).unwrap();
        }
        for (a, b) in be.voltages().iter().zip(tr.voltages()) {
            assert!((a - b).abs() < 1e-4, "BE {a} vs trapezoidal {b}");
        }
    }

    /// An underdamped configuration whose pad-inductor ringing period
    /// (tens of ns) is well resolved by a 1 ns step — the regime where the
    /// order of the integrator is visible. (On the stiff default grid,
    /// whose RC constants sit far *below* the timestep, L-stable BE is the
    /// better choice and trapezoidal rings; that is exactly why BE is the
    /// default.)
    fn underdamped_model(chip: &ChipFloorplan) -> GridModel {
        let mut cfg = GridConfig::default();
        cfg.pad_inductance_nh = 4.0;
        cfg.pad_resistance = 0.15;
        GridModel::build(chip, &cfg).unwrap()
    }

    #[test]
    fn trapezoidal_is_more_accurate_than_be_on_resolved_dynamics() {
        let chip = ChipFloorplan::new(&ChipConfig::small_test()).unwrap();
        let model = underdamped_model(&chip);
        let blocks = chip.blocks().len();
        let t_probe = 14.0; // ns: mid-ring after the load step
        let reference = node0_after(&model, blocks, Integration::Trapezoidal, 0.05, t_probe);
        let be_err =
            (node0_after(&model, blocks, Integration::BackwardEuler, 1.0, t_probe) - reference)
                .abs();
        let tr_err =
            (node0_after(&model, blocks, Integration::Trapezoidal, 1.0, t_probe) - reference)
                .abs();
        assert!(
            tr_err < be_err,
            "trapezoidal error {tr_err:.3e} not below BE error {be_err:.3e}"
        );
    }

    #[test]
    fn be_converges_as_dt_shrinks() {
        let chip = ChipFloorplan::new(&ChipConfig::small_test()).unwrap();
        let model = underdamped_model(&chip);
        let blocks = chip.blocks().len();
        let t_probe = 14.0;
        let reference = node0_after(&model, blocks, Integration::Trapezoidal, 0.05, t_probe);
        let coarse =
            (node0_after(&model, blocks, Integration::BackwardEuler, 1.0, t_probe) - reference)
                .abs();
        let fine =
            (node0_after(&model, blocks, Integration::BackwardEuler, 0.25, t_probe) - reference)
                .abs();
        assert!(fine < coarse, "BE did not converge: {fine:.3e} vs {coarse:.3e}");
    }

    #[test]
    fn invalid_timestep_rejected() {
        let (chip, model) = setup();
        let idle = vec![0.0; chip.blocks().len()];
        assert!(TransientSimulator::new(&model, 0.0, &idle).is_err());
        assert!(TransientSimulator::new(&model, f64::NAN, &idle).is_err());
    }

    #[test]
    fn wrong_current_len_rejected() {
        let (chip, model) = setup();
        let idle = vec![0.0; chip.blocks().len()];
        let mut sim = TransientSimulator::new(&model, 1.0, &idle).unwrap();
        assert!(sim.step(&[1.0]).is_err());
    }

    #[test]
    fn time_advances() {
        let (chip, model) = setup();
        let idle = vec![0.0; chip.blocks().len()];
        let mut sim = TransientSimulator::new(&model, 2.0, &idle).unwrap();
        sim.step(&idle).unwrap();
        sim.step(&idle).unwrap();
        assert!((sim.time_s() - 4e-9).abs() < 1e-18);
    }
}
