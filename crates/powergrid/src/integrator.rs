//! Time-integration methods for the transient engine.

/// Numerical integration scheme of the transient simulation.
///
/// Both schemes keep the system matrix constant (factor once, solve per
/// step); they differ in accuracy and damping:
///
/// * [`Integration::BackwardEuler`] — first-order, L-stable; numerically
///   damps ringing. The robust default.
/// * [`Integration::Trapezoidal`] — second-order, A-stable; preserves
///   oscillation amplitudes much better at the same timestep (at the cost
///   of possible non-physical ringing on hard discontinuities).
///
/// The `transient` bench and the integrator-accuracy test
/// quantify the trade-off on the default grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integration {
    /// First-order backward Euler (default).
    #[default]
    BackwardEuler,
    /// Second-order trapezoidal rule.
    Trapezoidal,
}

impl Integration {
    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            Integration::BackwardEuler => "backward-euler",
            Integration::Trapezoidal => "trapezoidal",
        }
    }
}

impl std::fmt::Display for Integration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_backward_euler() {
        assert_eq!(Integration::default(), Integration::BackwardEuler);
    }

    #[test]
    fn labels_are_distinct() {
        assert_ne!(
            Integration::BackwardEuler.to_string(),
            Integration::Trapezoidal.to_string()
        );
    }
}
