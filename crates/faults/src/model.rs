//! The fault models: pure transforms over one sensor's reading stream.

use voltsense_workload::GaussianRng;

use crate::FaultError;

/// One sensor fault model.
///
/// A fault transforms the clean reading as a function of how long it has
/// been active (`age` = samples since onset, starting at 0 on the onset
/// sample). All models are deterministic given the injector's seeded RNG
/// stream; see [`crate::FaultInjector`] for the replay guarantees.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum FaultKind {
    /// Output latched at a fixed value regardless of the input.
    StuckAt {
        /// The latched reading (V).
        value: f64,
    },
    /// Open circuit with no conversion result: the reading becomes NaN.
    OpenNaN,
    /// Open input floating to a supply rail.
    OpenRail {
        /// The rail the input floats to (V), e.g. 0.0 or VDD.
        rail: f64,
    },
    /// Linearly growing offset: `reading + rate * (age + 1)` — the first
    /// faulty sample is already one rate-step off.
    OffsetDrift {
        /// Offset growth per sample (V/sample; may be negative).
        rate_per_sample: f64,
    },
    /// Multiplicative slope error: `reading * gain`.
    GainError {
        /// The erroneous gain (1.0 = healthy).
        gain: f64,
    },
    /// Additive zero-mean Gaussian noise: `reading + sigma * N(0, 1)`.
    AdditiveNoise {
        /// Noise standard deviation (V).
        sigma: f64,
    },
    /// Reduced resolution: the reading snaps to the nearest multiple of
    /// `step`.
    Quantization {
        /// Quantization step (V), strictly positive.
        step: f64,
    },
}

impl FaultKind {
    /// Validates the model's parameters.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidFault`] for non-finite values, a
    /// negative noise sigma, or a non-positive quantization step.
    pub fn validate(&self) -> Result<(), FaultError> {
        let bad = |what: String| Err(FaultError::InvalidFault { what });
        match *self {
            FaultKind::StuckAt { value } if !value.is_finite() => {
                bad(format!("stuck-at value must be finite, got {value}"))
            }
            FaultKind::OpenRail { rail } if !rail.is_finite() => {
                bad(format!("rail must be finite, got {rail}"))
            }
            FaultKind::OffsetDrift { rate_per_sample } if !rate_per_sample.is_finite() => {
                bad(format!("drift rate must be finite, got {rate_per_sample}"))
            }
            FaultKind::GainError { gain } if !gain.is_finite() => {
                bad(format!("gain must be finite, got {gain}"))
            }
            FaultKind::AdditiveNoise { sigma } if !(sigma.is_finite() && sigma >= 0.0) => {
                bad(format!("noise sigma must be finite and >= 0, got {sigma}"))
            }
            FaultKind::Quantization { step } if !(step.is_finite() && step > 0.0) => {
                bad(format!("quantization step must be finite and > 0, got {step}"))
            }
            _ => Ok(()),
        }
    }

    /// `true` if applying the model consumes RNG samples. The injector
    /// draws for *every* active stochastic fault on *every* sample, so the
    /// stream stays aligned regardless of the readings themselves.
    pub fn is_stochastic(&self) -> bool {
        matches!(self, FaultKind::AdditiveNoise { .. })
    }

    /// Applies the fault to one reading. `age` counts samples since the
    /// fault's onset (0 on the onset sample).
    pub fn apply(&self, clean: f64, age: u64, rng: &mut GaussianRng) -> f64 {
        match *self {
            FaultKind::StuckAt { value } => value,
            FaultKind::OpenNaN => f64::NAN,
            FaultKind::OpenRail { rail } => rail,
            FaultKind::OffsetDrift { rate_per_sample } => {
                clean + rate_per_sample * (age as f64 + 1.0)
            }
            FaultKind::GainError { gain } => clean * gain,
            FaultKind::AdditiveNoise { sigma } => clean + sigma * rng.sample(),
            FaultKind::Quantization { step } => (clean / step).round() * step,
        }
    }

    /// Short stable name for reports and JSON keys.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::StuckAt { .. } => "stuck_at",
            FaultKind::OpenNaN => "open_nan",
            FaultKind::OpenRail { .. } => "open_rail",
            FaultKind::OffsetDrift { .. } => "offset_drift",
            FaultKind::GainError { .. } => "gain_error",
            FaultKind::AdditiveNoise { .. } => "additive_noise",
            FaultKind::Quantization { .. } => "quantization",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> GaussianRng {
        GaussianRng::seed_from_u64(7)
    }

    #[test]
    fn stuck_at_ignores_input() {
        let f = FaultKind::StuckAt { value: 0.7 };
        assert_eq!(f.apply(0.99, 0, &mut rng()), 0.7);
        assert_eq!(f.apply(-5.0, 9, &mut rng()), 0.7);
    }

    #[test]
    fn open_variants_produce_nan_or_rail() {
        assert!(FaultKind::OpenNaN.apply(0.9, 0, &mut rng()).is_nan());
        assert_eq!(FaultKind::OpenRail { rail: 0.0 }.apply(0.9, 3, &mut rng()), 0.0);
    }

    #[test]
    fn drift_grows_linearly_with_age() {
        let f = FaultKind::OffsetDrift {
            rate_per_sample: -0.001,
        };
        let at0 = f.apply(0.9, 0, &mut rng());
        let at9 = f.apply(0.9, 9, &mut rng());
        assert!((at0 - 0.899).abs() < 1e-12);
        assert!((at9 - 0.890).abs() < 1e-12);
    }

    #[test]
    fn gain_scales_and_quantization_snaps() {
        let g = FaultKind::GainError { gain: 0.5 };
        assert!((g.apply(0.9, 0, &mut rng()) - 0.45).abs() < 1e-12);
        let q = FaultKind::Quantization { step: 0.05 };
        assert!((q.apply(0.93, 0, &mut rng()) - 0.95).abs() < 1e-12);
        assert!((q.apply(0.92, 0, &mut rng()) - 0.90).abs() < 1e-12);
    }

    #[test]
    fn noise_is_seed_deterministic() {
        let f = FaultKind::AdditiveNoise { sigma: 0.01 };
        let a = f.apply(0.9, 0, &mut GaussianRng::seed_from_u64(3));
        let b = f.apply(0.9, 0, &mut GaussianRng::seed_from_u64(3));
        assert_eq!(a, b);
        assert_ne!(a, 0.9);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(FaultKind::StuckAt { value: f64::NAN }.validate().is_err());
        assert!(FaultKind::OpenRail { rail: f64::INFINITY }.validate().is_err());
        assert!(FaultKind::AdditiveNoise { sigma: -0.1 }.validate().is_err());
        assert!(FaultKind::Quantization { step: 0.0 }.validate().is_err());
        assert!(FaultKind::GainError { gain: f64::NAN }.validate().is_err());
        assert!(FaultKind::OffsetDrift {
            rate_per_sample: f64::NAN
        }
        .validate()
        .is_err());
        assert!(FaultKind::StuckAt { value: 0.7 }.validate().is_ok());
        assert!(FaultKind::OpenNaN.validate().is_ok());
    }

    #[test]
    fn only_noise_is_stochastic() {
        assert!(FaultKind::AdditiveNoise { sigma: 0.1 }.is_stochastic());
        assert!(!FaultKind::StuckAt { value: 0.7 }.is_stochastic());
        assert!(!FaultKind::Quantization { step: 0.01 }.is_stochastic());
    }
}
