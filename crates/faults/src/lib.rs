//! Deterministic sensor fault injection for robustness experiments.
//!
//! The methodology predicts every function-area voltage from a handful of
//! blank-area sensors, so a single broken sensor corrupts the *entire*
//! predicted voltage map and every alarm decision derived from it. Robust
//! sparse-sensing work treats sensor dropout as a first-class design
//! concern; this crate supplies the ingredient the experiments need: a
//! library of physically-motivated sensor fault models and a schedule that
//! activates them mid-trace, all driven by the workspace's portable
//! [`GaussianRng`] so every fault scenario replays **bit-identically** from
//! its seed on every platform.
//!
//! # Fault taxonomy
//!
//! | model | silicon failure it mimics |
//! |---|---|
//! | [`FaultKind::StuckAt`] | latched comparator / DAC code stuck at one value |
//! | [`FaultKind::OpenNaN`] | open bond / no data (reading is NaN) |
//! | [`FaultKind::OpenRail`] | open input floating to a supply rail |
//! | [`FaultKind::OffsetDrift`] | reference drift (aging, temperature ramp) |
//! | [`FaultKind::GainError`] | mis-calibrated sensing slope |
//! | [`FaultKind::AdditiveNoise`] | degraded SNR (coupling, supply ripple) |
//! | [`FaultKind::Quantization`] | reduced effective resolution |
//!
//! Each model is a pure transform over one sensor's reading stream; faults
//! on the same sensor compose in schedule order.
//!
//! # Example
//!
//! ```
//! use voltsense_faults::{FaultEvent, FaultKind, FaultSchedule, FaultInjector};
//!
//! # fn main() -> Result<(), voltsense_faults::FaultError> {
//! // Sensor 1 gets stuck at 0.70 V from sample 2 onwards.
//! let schedule = FaultSchedule::new(vec![FaultEvent::new(
//!     1,
//!     2,
//!     FaultKind::StuckAt { value: 0.70 },
//! )])?;
//! let mut injector = FaultInjector::new(schedule, 3, 42)?;
//! assert_eq!(injector.corrupt(&[0.99, 0.98, 0.97])?, vec![0.99, 0.98, 0.97]);
//! assert_eq!(injector.corrupt(&[0.99, 0.98, 0.97])?, vec![0.99, 0.98, 0.97]);
//! assert_eq!(injector.corrupt(&[0.99, 0.98, 0.97])?, vec![0.99, 0.70, 0.97]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod model;
mod schedule;

pub use model::FaultKind;
pub use schedule::{FaultEvent, FaultInjector, FaultSchedule};
pub use voltsense_workload::GaussianRng;

use std::error::Error;
use std::fmt;

/// Error type for fault-injection configuration.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FaultError {
    /// A fault parameter was out of range (NaN, negative sigma, …).
    InvalidFault {
        /// Human-readable description.
        what: String,
    },
    /// An event names a sensor index outside the injector's sensor count,
    /// or a reading vector has the wrong length.
    ShapeMismatch {
        /// Human-readable description.
        what: String,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::InvalidFault { what } => write!(f, "invalid fault: {what}"),
            FaultError::ShapeMismatch { what } => write!(f, "shape mismatch: {what}"),
        }
    }
}

impl Error for FaultError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FaultError>();
    }

    #[test]
    fn error_messages_name_the_problem() {
        let e = FaultError::InvalidFault {
            what: "sigma must be finite".into(),
        };
        assert!(e.to_string().contains("sigma"));
    }
}
