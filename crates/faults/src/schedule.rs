//! Fault schedules and the streaming injector.

use voltsense_telemetry as telemetry;
use voltsense_workload::GaussianRng;

use crate::{FaultError, FaultKind};

/// One scheduled fault: a model activating on one sensor at a sample index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Index of the affected sensor within the reading vector.
    pub sensor: usize,
    /// Sample index (0-based) on which the fault first applies.
    pub onset: u64,
    /// The fault model.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// Creates an event.
    pub fn new(sensor: usize, onset: u64, kind: FaultKind) -> Self {
        FaultEvent {
            sensor,
            onset,
            kind,
        }
    }
}

/// A validated set of fault events, ordered by onset (ties keep the
/// caller's order, which is also the per-sensor composition order).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Builds a schedule from events, validating every fault model and
    /// sorting by onset (stable, so same-onset events keep their relative
    /// order).
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidFault`] if any event's model has
    /// out-of-range parameters.
    pub fn new(mut events: Vec<FaultEvent>) -> Result<Self, FaultError> {
        for e in &events {
            e.kind.validate()?;
        }
        events.sort_by_key(|e| e.onset);
        Ok(FaultSchedule { events })
    }

    /// A schedule with no faults (the healthy baseline).
    pub fn healthy() -> Self {
        FaultSchedule { events: Vec::new() }
    }

    /// The events, sorted by onset.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Largest sensor index any event touches, or `None` for an empty
    /// schedule.
    pub fn max_sensor(&self) -> Option<usize> {
        self.events.iter().map(|e| e.sensor).max()
    }
}

/// Streams a fault schedule over successive reading vectors.
///
/// The injector owns a [`GaussianRng`] seeded at construction. On every
/// sample it draws exactly one Gaussian per *active stochastic* event —
/// whether or not the draw changes the reading — so the stream of corrupted
/// readings is a pure function of `(schedule, num_sensors, seed, inputs)`
/// and replays bit-identically.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    schedule: FaultSchedule,
    num_sensors: usize,
    rng: GaussianRng,
    sample: u64,
}

impl FaultInjector {
    /// Creates an injector for reading vectors of `num_sensors` entries.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::ShapeMismatch`] if an event names a sensor
    /// index `>= num_sensors`.
    pub fn new(
        schedule: FaultSchedule,
        num_sensors: usize,
        seed: u64,
    ) -> Result<Self, FaultError> {
        if let Some(max) = schedule.max_sensor() {
            if max >= num_sensors {
                return Err(FaultError::ShapeMismatch {
                    what: format!(
                        "event targets sensor {max}, but readings have {num_sensors} sensors"
                    ),
                });
            }
        }
        Ok(FaultInjector {
            schedule,
            num_sensors,
            rng: GaussianRng::seed_from_u64(seed),
            sample: 0,
        })
    }

    /// Number of samples consumed so far.
    pub fn samples_injected(&self) -> u64 {
        self.sample
    }

    /// The schedule being injected.
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }

    /// Sensors with at least one active fault at the *next* sample to be
    /// injected.
    pub fn active_sensors(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .schedule
            .events
            .iter()
            .filter(|e| e.onset <= self.sample)
            .map(|e| e.sensor)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Corrupts one sample of readings and advances the sample counter.
    ///
    /// Active faults apply in schedule order; multiple faults on the same
    /// sensor compose (each sees the previous one's output).
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::ShapeMismatch`] if `readings.len()` differs
    /// from the configured sensor count.
    pub fn corrupt(&mut self, readings: &[f64]) -> Result<Vec<f64>, FaultError> {
        if readings.len() != self.num_sensors {
            return Err(FaultError::ShapeMismatch {
                what: format!(
                    "expected {} readings, got {}",
                    self.num_sensors,
                    readings.len()
                ),
            });
        }
        let mut out = readings.to_vec();
        let mut applied = 0u64;
        for e in &self.schedule.events {
            if e.onset > self.sample {
                // Events are onset-sorted: nothing later is active either.
                break;
            }
            let age = self.sample - e.onset;
            out[e.sensor] = e.kind.apply(out[e.sensor], age, &mut self.rng);
            applied += 1;
        }
        if applied > 0 {
            telemetry::counter("faults.injected_readings", applied);
        }
        self.sample += 1;
        Ok(out)
    }

    /// Rewinds to sample 0 and re-seeds the RNG, so the injector replays
    /// the identical corruption stream.
    pub fn reset(&mut self, seed: u64) {
        self.rng = GaussianRng::seed_from_u64(seed);
        self.sample = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_sorts_by_onset_stably() {
        let s = FaultSchedule::new(vec![
            FaultEvent::new(0, 5, FaultKind::StuckAt { value: 0.7 }),
            FaultEvent::new(1, 2, FaultKind::OpenNaN),
            FaultEvent::new(2, 5, FaultKind::GainError { gain: 0.9 }),
        ])
        .unwrap();
        let onsets: Vec<u64> = s.events().iter().map(|e| e.onset).collect();
        assert_eq!(onsets, vec![2, 5, 5]);
        // Same-onset events keep caller order: sensor 0 before sensor 2.
        assert_eq!(s.events()[1].sensor, 0);
        assert_eq!(s.events()[2].sensor, 2);
    }

    #[test]
    fn schedule_rejects_invalid_models() {
        assert!(FaultSchedule::new(vec![FaultEvent::new(
            0,
            0,
            FaultKind::Quantization { step: -1.0 }
        )])
        .is_err());
    }

    #[test]
    fn injector_rejects_out_of_range_sensor() {
        let s = FaultSchedule::new(vec![FaultEvent::new(
            5,
            0,
            FaultKind::OpenNaN,
        )])
        .unwrap();
        assert!(FaultInjector::new(s, 3, 0).is_err());
    }

    #[test]
    fn injector_rejects_wrong_reading_count() {
        let mut inj = FaultInjector::new(FaultSchedule::healthy(), 3, 0).unwrap();
        assert!(inj.corrupt(&[1.0]).is_err());
    }

    #[test]
    fn faults_activate_exactly_at_onset() {
        let s = FaultSchedule::new(vec![FaultEvent::new(
            0,
            2,
            FaultKind::StuckAt { value: 0.5 },
        )])
        .unwrap();
        let mut inj = FaultInjector::new(s, 1, 9).unwrap();
        assert_eq!(inj.corrupt(&[0.9]).unwrap(), vec![0.9]);
        assert_eq!(inj.corrupt(&[0.9]).unwrap(), vec![0.9]);
        assert_eq!(inj.corrupt(&[0.9]).unwrap(), vec![0.5]);
        assert_eq!(inj.corrupt(&[0.9]).unwrap(), vec![0.5]);
        assert_eq!(inj.samples_injected(), 4);
    }

    #[test]
    fn same_sensor_faults_compose_in_schedule_order() {
        // Gain then offset drift: (0.8 * 0.5) + 0.1 = 0.5, not (0.8 + 0.1) * 0.5.
        let s = FaultSchedule::new(vec![
            FaultEvent::new(0, 0, FaultKind::GainError { gain: 0.5 }),
            FaultEvent::new(0, 0, FaultKind::OffsetDrift { rate_per_sample: 0.1 }),
        ])
        .unwrap();
        let mut inj = FaultInjector::new(s, 1, 0).unwrap();
        let out = inj.corrupt(&[0.8]).unwrap();
        assert!((out[0] - 0.5).abs() < 1e-12, "got {}", out[0]);
    }

    #[test]
    fn replay_is_bit_identical() {
        let s = FaultSchedule::new(vec![
            FaultEvent::new(0, 1, FaultKind::AdditiveNoise { sigma: 0.02 }),
            FaultEvent::new(1, 3, FaultKind::AdditiveNoise { sigma: 0.05 }),
        ])
        .unwrap();
        let run = |seed: u64| {
            let mut inj = FaultInjector::new(s.clone(), 2, seed).unwrap();
            (0..10)
                .flat_map(|i| {
                    inj.corrupt(&[0.9 + 0.001 * i as f64, 0.95]).unwrap()
                })
                .collect::<Vec<f64>>()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn reset_replays_the_same_stream() {
        let s = FaultSchedule::new(vec![FaultEvent::new(
            0,
            0,
            FaultKind::AdditiveNoise { sigma: 0.1 },
        )])
        .unwrap();
        let mut inj = FaultInjector::new(s, 1, 3).unwrap();
        let a: Vec<f64> = (0..5).flat_map(|_| inj.corrupt(&[0.9]).unwrap()).collect();
        inj.reset(3);
        let b: Vec<f64> = (0..5).flat_map(|_| inj.corrupt(&[0.9]).unwrap()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn active_sensors_track_the_sample_counter() {
        let s = FaultSchedule::new(vec![
            FaultEvent::new(2, 0, FaultKind::OpenNaN),
            FaultEvent::new(0, 2, FaultKind::StuckAt { value: 0.7 }),
        ])
        .unwrap();
        let mut inj = FaultInjector::new(s, 3, 0).unwrap();
        assert_eq!(inj.active_sensors(), vec![2]);
        inj.corrupt(&[1.0, 1.0, 1.0]).unwrap();
        inj.corrupt(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(inj.active_sensors(), vec![0, 2]);
    }

    #[test]
    fn healthy_schedule_is_identity() {
        let mut inj = FaultInjector::new(FaultSchedule::healthy(), 2, 0).unwrap();
        assert_eq!(inj.corrupt(&[0.1, 0.2]).unwrap(), vec![0.1, 0.2]);
    }
}
