//! Property suites for the fault models and the streaming injector.

use voltsense_faults::{FaultEvent, FaultInjector, FaultKind, FaultSchedule};
use voltsense_testkit::{choice, f64_range, forall, u64_range, usize_range};

/// Every named fault kind, parameterised from one scalar so `choice` can
/// shrink across kinds while `forall` shrinks the scalar.
fn kind_from(tag: &str, p: f64) -> FaultKind {
    match tag {
        "stuck_at" => FaultKind::StuckAt { value: p },
        "open_nan" => FaultKind::OpenNaN,
        "open_rail" => FaultKind::OpenRail { rail: p.abs() },
        "offset_drift" => FaultKind::OffsetDrift {
            rate_per_sample: p * 0.01,
        },
        "gain_error" => FaultKind::GainError { gain: 0.5 + p.abs() },
        "additive_noise" => FaultKind::AdditiveNoise { sigma: p.abs() },
        "quantization" => FaultKind::Quantization {
            step: 0.001 + p.abs(),
        },
        other => panic!("unknown fault tag {other}"),
    }
}

const ALL_TAGS: [&str; 7] = [
    "stuck_at",
    "open_nan",
    "open_rail",
    "offset_drift",
    "gain_error",
    "additive_noise",
    "quantization",
];

#[test]
fn every_fault_model_is_seed_deterministic() {
    forall!(cases = 96, (
        tag in choice(ALL_TAGS.to_vec()),
        p in f64_range(-1.0, 1.0),
        seed in u64_range(0, 1 << 32),
        onset in u64_range(0, 8),
    ) => {
        let kind = kind_from(tag, p);
        let schedule = FaultSchedule::new(vec![FaultEvent::new(0, onset, kind)])
            .expect("parameterisation keeps every kind valid");
        let run = || {
            let mut inj = FaultInjector::new(schedule.clone(), 1, seed)
                .expect("sensor 0 is in range");
            (0..16)
                .map(|i| inj.corrupt(&[0.9 + 0.001 * i as f64]).expect("length matches")[0])
                .collect::<Vec<f64>>()
        };
        let a = run();
        let b = run();
        // Bit-identical replay, NaN-aware (open_nan produces NaNs).
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits(), "replay diverged: {x} vs {y}");
        }
    });
}

#[test]
fn deterministic_fault_magnitudes_are_bounded() {
    // For every non-stochastic, finite-output model the corruption magnitude
    // admits a closed-form bound; check outputs never exceed it.
    forall!(cases = 96, (
        tag in choice(vec!["stuck_at", "open_rail", "offset_drift", "gain_error", "quantization"]),
        p in f64_range(-1.0, 1.0),
        seed in u64_range(0, 1 << 32),
        clean in f64_range(0.5, 1.2),
    ) => {
        let kind = kind_from(tag, p);
        let horizon: u64 = 32;
        let bound = match kind {
            FaultKind::StuckAt { value } => (clean - value).abs(),
            FaultKind::OpenRail { rail } => (clean - rail).abs(),
            FaultKind::OffsetDrift { rate_per_sample } => {
                rate_per_sample.abs() * horizon as f64
            }
            FaultKind::GainError { gain } => (clean * (gain - 1.0)).abs(),
            FaultKind::Quantization { step } => step / 2.0,
            _ => unreachable!("only deterministic kinds are generated"),
        };
        let schedule = FaultSchedule::new(vec![FaultEvent::new(0, 0, kind)]).unwrap();
        let mut inj = FaultInjector::new(schedule, 1, seed).unwrap();
        for _ in 0..horizon {
            let out = inj.corrupt(&[clean]).unwrap()[0];
            let err = (out - clean).abs();
            assert!(
                err <= bound + 1e-12,
                "{tag}: corruption {err} exceeds bound {bound}"
            );
        }
    });
}

#[test]
fn faults_are_inactive_before_onset_and_active_after() {
    forall!(cases = 96, (
        tag in choice(ALL_TAGS.to_vec()),
        p in f64_range(0.1, 1.0),
        onset in u64_range(0, 20),
        seed in u64_range(0, 1 << 32),
        sensor in usize_range(0, 4),
    ) => {
        let kind = kind_from(tag, p);
        let schedule = FaultSchedule::new(vec![FaultEvent::new(sensor, onset, kind)]).unwrap();
        let mut inj = FaultInjector::new(schedule, 4, seed).unwrap();
        let clean = [0.91, 0.93, 0.95, 0.97];
        for t in 0..(onset + 8) {
            let out = inj.corrupt(&clean).unwrap();
            for (j, (&o, &c)) in out.iter().zip(&clean).enumerate() {
                if j != sensor || t < onset {
                    // Untouched sensors, and the target before onset, pass
                    // through bit-exactly.
                    assert_eq!(o.to_bits(), c.to_bits(), "sensor {j} changed at t={t}");
                }
            }
        }
        // The fault was genuinely active from its onset: with the same seed,
        // the target sensor's stream disagrees with the clean value at onset
        // for every kind whose parameterisation here guarantees a change.
        inj.reset(seed);
        for _ in 0..onset {
            inj.corrupt(&clean).unwrap();
        }
        let at_onset = inj.corrupt(&clean).unwrap()[sensor];
        let changes = match kind {
            // gain 0.5+|p| can be ≈1.0 and quantization can snap to itself;
            // those legitimately may leave the reading unchanged.
            FaultKind::GainError { .. } | FaultKind::Quantization { .. } => false,
            FaultKind::AdditiveNoise { sigma } => sigma > 1e-6,
            _ => true,
        };
        if changes {
            assert!(
                at_onset.is_nan() || at_onset.to_bits() != clean[sensor].to_bits(),
                "{tag}: no effect at onset (got {at_onset})"
            );
        }
    });
}

#[test]
fn schedule_events_are_onset_sorted() {
    forall!(cases = 64, (
        o1 in u64_range(0, 100),
        o2 in u64_range(0, 100),
        o3 in u64_range(0, 100),
    ) => {
        let schedule = FaultSchedule::new(vec![
            FaultEvent::new(0, o1, FaultKind::OpenNaN),
            FaultEvent::new(1, o2, FaultKind::StuckAt { value: 0.7 }),
            FaultEvent::new(2, o3, FaultKind::GainError { gain: 0.9 }),
        ])
        .unwrap();
        let onsets: Vec<u64> = schedule.events().iter().map(|e| e.onset).collect();
        let mut sorted = onsets.clone();
        sorted.sort_unstable();
        assert_eq!(onsets, sorted);
    });
}

#[test]
fn multi_sensor_schedules_replay_bit_identically() {
    forall!(cases = 48, (
        seed in u64_range(0, 1 << 32),
        sigma in f64_range(0.001, 0.1),
        onset_a in u64_range(0, 10),
        onset_b in u64_range(0, 10),
    ) => {
        let schedule = FaultSchedule::new(vec![
            FaultEvent::new(0, onset_a, FaultKind::AdditiveNoise { sigma }),
            FaultEvent::new(2, onset_b, FaultKind::AdditiveNoise { sigma: sigma * 2.0 }),
            FaultEvent::new(1, onset_b, FaultKind::OffsetDrift { rate_per_sample: -0.002 }),
        ])
        .unwrap();
        let run = || {
            let mut inj = FaultInjector::new(schedule.clone(), 3, seed).unwrap();
            (0..24)
                .flat_map(|i| {
                    inj.corrupt(&[0.95, 0.9 + 0.001 * i as f64, 0.98]).unwrap()
                })
                .collect::<Vec<f64>>()
        };
        assert_eq!(run(), run());
    });
}
