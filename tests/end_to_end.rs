//! End-to-end integration: floorplan → workload → power grid → selection →
//! prediction → detection, on the small test scenario.

use voltsense::core::{Methodology, MethodologyConfig};
use voltsense::scenario::{CorePartition, PerCoreModel, Scenario};

fn scenario() -> Scenario {
    Scenario::small().expect("small scenario builds")
}

#[test]
fn whole_chip_pipeline_produces_accurate_model() {
    let s = scenario();
    let data = s.collect(&[0, 6, 12]).expect("simulation succeeds");
    assert!(data.num_samples() > 200, "too few samples: {}", data.num_samples());
    assert_eq!(data.num_blocks(), 60);

    let (train, test) = data.split(3);
    let cfg = MethodologyConfig {
        lambda: 10.0,
        ..MethodologyConfig::default()
    };
    let fitted = Methodology::fit(&train.x, &train.f, &cfg).expect("fit succeeds");
    assert!(
        !fitted.sensors().is_empty(),
        "no sensors selected at lambda 10"
    );
    assert!(
        fitted.sensors().len() < data.num_candidates() / 2,
        "selection is not sparse: {} of {}",
        fitted.sensors().len(),
        data.num_candidates()
    );

    let report = fitted.evaluate(&test.x, &test.f).expect("evaluation succeeds");
    // The paper reports relative errors well under 1e-2 even with few
    // sensors; the substrate should land in the same regime.
    assert!(
        report.relative_error < 0.02,
        "relative error too large: {}",
        report.relative_error
    );
    // Total error rate should beat the trivial never-alarm detector on
    // emergency-containing data.
    assert!(report.detection.samples > 0);
}

#[test]
fn per_core_model_covers_all_blocks() {
    let s = scenario();
    let data = s.collect(&[0, 3]).expect("simulation succeeds");
    let (train, test) = data.split(3);
    let partition = CorePartition::from_chip(s.chip());
    assert_eq!(partition.num_cores(), 2);

    let cfg = MethodologyConfig {
        lambda: 6.0,
        ..MethodologyConfig::default()
    };
    let model = PerCoreModel::fit(&train, &partition, &cfg).expect("per-core fit");
    assert_eq!(model.fits().len(), 2);
    assert!(model.total_sensors() >= 2, "each core places >= 1 sensor");

    let report = model.evaluate(&test).expect("per-core evaluation");
    assert!(
        report.relative_error < 0.03,
        "per-core relative error too large: {}",
        report.relative_error
    );

    // Every block row must be predicted (non-zero row somewhere).
    let pred = model.predict_matrix(&test.x).expect("prediction");
    for k in 0..pred.rows() {
        let row_norm: f64 = pred.row(k).iter().map(|v| v * v).sum();
        assert!(row_norm > 0.0, "block {k} never predicted");
    }
}

#[test]
fn per_core_sweep_matches_individual_fits() {
    let s = scenario();
    let data = s.collect(&[0, 3]).expect("simulation succeeds");
    let (train, _test) = data.split(3);
    let partition = CorePartition::from_chip(s.chip());

    let lambdas = [6.0, 10.0];
    let sweep = PerCoreModel::fit_sweep(
        &train,
        &partition,
        &lambdas,
        &MethodologyConfig::default(),
    )
    .expect("sweep fit");
    assert_eq!(sweep.len(), lambdas.len());
    for (model, &lambda) in sweep.iter().zip(&lambdas) {
        let solo = PerCoreModel::fit(
            &train,
            &partition,
            &MethodologyConfig {
                lambda,
                ..MethodologyConfig::default()
            },
        )
        .expect("individual fit");
        assert_eq!(
            model.sensors_global(),
            solo.sensors_global(),
            "λ={lambda}: warm sweep placed different sensors than the solo fit"
        );
    }

    let qs = [2usize, 4];
    let q_sweep = PerCoreModel::fit_with_sensor_count_sweep(
        &train,
        &partition,
        &qs,
        &MethodologyConfig::default(),
    )
    .expect("count sweep fit");
    for (model, &q) in q_sweep.iter().zip(&qs) {
        for fit in model.fits() {
            let got = fit.fitted.sensors().len();
            assert!(
                (got as i64 - q as i64).abs() <= 1,
                "core {:?}: asked for {q} sensors, got {got}",
                fit.core
            );
        }
    }
}

#[test]
fn critical_nodes_live_inside_their_blocks() {
    let s = scenario();
    let data = s.collect(&[1]).expect("simulation succeeds");
    let lattice = s.chip().lattice();
    for (block, node) in s.chip().blocks().iter().zip(&data.critical_nodes) {
        match lattice.site(*node) {
            voltsense::floorplan::NodeSite::FunctionArea(owner) => {
                assert_eq!(owner, block.id());
            }
            other => panic!("critical node in blank area: {other:?}"),
        }
    }
}

#[test]
fn dataset_bookkeeping_is_consistent() {
    let s = scenario();
    let data = s.collect(&[2, 4]).expect("simulation succeeds");
    assert_eq!(data.sample_benchmark.len(), data.num_samples());
    let bm2 = data.benchmark_subset(2);
    let bm4 = data.benchmark_subset(4);
    assert_eq!(bm2.num_samples() + bm4.num_samples(), data.num_samples());
    assert!(bm2.sample_benchmark.iter().all(|&b| b == 2));

    let (train, test) = data.split(4);
    assert_eq!(train.num_samples() + test.num_samples(), data.num_samples());
    // No overlap: test gets every 4th sample.
    assert_eq!(test.num_samples(), data.num_samples().div_ceil(4));
}

#[test]
fn voltage_maps_have_spatial_correlation() {
    // The methodology's premise: nearby nodes are highly correlated,
    // distant ones less so. Verify on real simulated data.
    let s = scenario();
    let maps = s.simulate(0).expect("simulation succeeds");
    let lattice = s.chip().lattice();
    let candidates = lattice.candidate_sites();
    // Pick a candidate and find its nearest and farthest peers.
    let a = candidates[candidates.len() / 2];
    let pa = lattice.position(a);
    let (nearest, farthest) = {
        let mut nearest = (f64::INFINITY, a);
        let mut farthest = (0.0, a);
        for &c in candidates {
            if c == a {
                continue;
            }
            let d = lattice.position(c).distance_to(pa);
            if d < nearest.0 {
                nearest = (d, c);
            }
            if d > farthest.0 {
                farthest = (d, c);
            }
        }
        (nearest.1, farthest.1)
    };
    let corr_near = voltsense::linalg::stats::pearson(
        maps.node_waveform(a),
        maps.node_waveform(nearest),
    );
    let corr_far = voltsense::linalg::stats::pearson(
        maps.node_waveform(a),
        maps.node_waveform(farthest),
    );
    assert!(
        corr_near > corr_far,
        "near correlation {corr_near} not above far correlation {corr_far}"
    );
    assert!(corr_near > 0.8, "local correlation too weak: {corr_near}");
}
