//! Convergence regression tests driven by telemetry captures.
//!
//! The solvers record per-iteration convergence events (see DESIGN.md §7);
//! these tests pin the *shape* of those series on seeded problems: FISTA's
//! objective must be (near-)non-increasing, BCD's objective must be exactly
//! non-increasing with its KKT residual driven to tolerance, and CG's
//! relative residual must decrease to tolerance. A solver change that keeps
//! the final answer right but silently degrades convergence (e.g. a broken
//! step size) fails here instead of in a wall-clock regression much later.

use std::sync::Arc;

use voltsense::grouplasso::{solve_penalized, solve_penalized_fista, GlOptions, GlProblem};
use voltsense::linalg::Matrix;
use voltsense::sparse::{cg, TripletMatrix};
use voltsense::telemetry::{self, MemoryRecorder, Snapshot};
use voltsense::workload::GaussianRng;

/// A deterministic group-lasso problem: 8 candidates, 3 targets, 60
/// samples. Targets are noisy mixtures of the first three candidates, so a
/// mid-range penalty has a non-trivial active set to converge on.
fn seeded_problem() -> GlProblem {
    let (m_count, k_count, n_count) = (8, 3, 60);
    let mut rng = GaussianRng::seed_from_u64(0x5EED);
    let mut z = Matrix::zeros(m_count, n_count);
    for m in 0..m_count {
        for n in 0..n_count {
            z[(m, n)] = rng.sample();
        }
    }
    let mut g = Matrix::zeros(k_count, n_count);
    for k in 0..k_count {
        for n in 0..n_count {
            g[(k, n)] = z[(k, n)] + 0.4 * z[((k + 1) % 3, n)] + 0.05 * rng.sample();
        }
    }
    GlProblem::from_data(&z, &g).unwrap()
}

/// Captures everything `f` records (from this thread) into a snapshot.
fn capture(f: impl FnOnce()) -> Snapshot {
    let recorder = Arc::new(MemoryRecorder::new());
    telemetry::with_scoped(recorder.clone(), f);
    recorder.snapshot("test")
}

#[test]
fn fista_objective_is_non_increasing() {
    let problem = seeded_problem();
    let mu = 0.3 * problem.mu_max();
    let snapshot = capture(|| {
        let sol = solve_penalized_fista(&problem, mu, &GlOptions::default(), None).unwrap();
        assert!(sol.converged);
    });

    let objectives = snapshot.event_series("fista.iter", "objective");
    assert!(
        objectives.len() >= 2,
        "expected several fista.iter events, got {}",
        objectives.len()
    );
    // FISTA is not a descent method — momentum produces small ripples
    // (observed ~4e-5 relative on this problem). Pin the monotone
    // envelope instead: no iterate may exceed the best objective seen so
    // far by more than 0.1% relative, and the sequence must end strictly
    // below where it started.
    let mut best = objectives[0];
    for (i, &obj) in objectives.iter().enumerate().skip(1) {
        assert!(
            obj <= best * (1.0 + 1e-3) + 1e-12,
            "objective rose above envelope at iteration {i}: {obj} vs best {best}"
        );
        best = best.min(obj);
    }
    assert!(
        *objectives.last().unwrap() < objectives[0],
        "FISTA made no overall progress"
    );
    // The final KKT residual in the event stream must be at tolerance
    // scale: far below the mu_max normalisation it is measured against.
    let kkt = snapshot.event_series("fista.iter", "kkt_residual");
    let last_kkt = *kkt.last().unwrap();
    assert!(last_kkt < 1e-3, "final FISTA kkt residual {last_kkt}");
    assert_eq!(snapshot.counter("fista.solves"), Some(1));
    let iters = snapshot.histogram("fista.iterations").unwrap();
    assert_eq!(iters.count, 1);
    assert_eq!(iters.min as usize, objectives.len());
}

#[test]
fn bcd_objective_descends_and_kkt_reaches_tolerance() {
    let problem = seeded_problem();
    let mu = 0.3 * problem.mu_max();
    let options = GlOptions::default();
    let snapshot = capture(|| {
        let sol = solve_penalized(&problem, mu, &options, None).unwrap();
        assert!(sol.converged);
    });

    let objectives = snapshot.event_series("bcd.sweep", "objective");
    assert!(objectives.len() >= 2, "expected several bcd.sweep events");
    // Exact coordinate minimisation: each sweep is a true descent step.
    for pair in objectives.windows(2) {
        assert!(
            pair[1] <= pair[0] + 1e-12,
            "BCD objective rose: {} -> {}",
            pair[0],
            pair[1]
        );
    }
    let kkt = snapshot.event_series("bcd.sweep", "kkt_residual");
    let (first, last) = (kkt[0], *kkt.last().unwrap());
    assert!(
        last <= options.tolerance,
        "final BCD kkt residual {last} above tolerance {}",
        options.tolerance
    );
    assert!(last <= first, "BCD kkt residual rose: {first} -> {last}");
    assert_eq!(snapshot.counter("bcd.solves"), Some(1));
}

#[test]
fn cg_residual_decreases_to_tolerance() {
    // The 2-D resistor grid from the power-grid substrate's DC solve.
    let (w, h) = (12, 12);
    let mut t = TripletMatrix::new(w * h, w * h);
    for y in 0..h {
        for x in 0..w {
            let i = y * w + x;
            if x + 1 < w {
                t.stamp_conductance(i, i + 1, 2.0);
            }
            if y + 1 < h {
                t.stamp_conductance(i, i + w, 2.0);
            }
            t.stamp_grounded_conductance(i, 0.01);
        }
    }
    let a = t.to_csr();
    let b: Vec<f64> = (0..w * h).map(|i| ((i % 7) as f64) - 3.0).collect();
    let options = cg::CgOptions::default();

    let mut iterations = 0;
    let snapshot = capture(|| {
        let sol = cg::solve(&a, &b, &options).unwrap();
        iterations = sol.iterations;
    });

    let residuals = snapshot.event_series("cg.iter", "residual");
    assert_eq!(
        residuals.len(),
        iterations,
        "one cg.iter event per iteration"
    );
    let (first, last) = (residuals[0], *residuals.last().unwrap());
    assert!(last <= options.tolerance, "final CG residual {last}");
    assert!(last < first, "CG residual did not decrease: {first} -> {last}");
    assert!(residuals.iter().all(|r| r.is_finite() && *r >= 0.0));
    assert_eq!(snapshot.counter("cg.solves"), Some(1));
    let hist = snapshot.histogram("cg.iterations").unwrap();
    assert_eq!(hist.count, 1);
    assert_eq!(hist.min as usize, iterations);
}
