//! Shape checks against the paper's qualitative results: the absolute
//! numbers depend on the synthetic substrate, but the *relationships* the
//! paper reports must hold.

use voltsense::core::{Methodology, MethodologyConfig, SensorSelector};
use voltsense::eagleeye::{EagleEyeConfig, EagleEyePlacement};
use voltsense::core::detection;
use voltsense::scenario::{Scenario, ScenarioData};

fn collect() -> (Scenario, ScenarioData) {
    let s = Scenario::small().expect("scenario builds");
    // Use several benchmarks so emergencies appear in train and test.
    let data = s.collect(&[0, 3, 6, 12]).expect("simulation succeeds");
    (s, data)
}

/// Paper Table 1 shape: more budget → more sensors, lower error.
#[test]
fn lambda_sweep_monotonicity() {
    let (_, data) = collect();
    let (train, test) = data.split(3);
    let mut prev_q = 0usize;
    let mut errors = Vec::new();
    for lambda in [3.0, 10.0, 25.0] {
        let cfg = MethodologyConfig {
            lambda,
            ..MethodologyConfig::default()
        };
        let fitted = Methodology::fit(&train.x, &train.f, &cfg).expect("fit");
        let q = fitted.sensors().len();
        assert!(
            q >= prev_q,
            "sensor count not monotone in lambda: {prev_q} then {q}"
        );
        prev_q = q;
        let report = fitted.evaluate(&test.x, &test.f).expect("evaluate");
        errors.push(report.relative_error);
    }
    assert!(
        errors.windows(2).all(|w| w[1] <= w[0] * 1.25),
        "relative error should broadly decrease with lambda: {errors:?}"
    );
    assert!(
        errors[0] < 0.02,
        "even the smallest budget should predict well (paper: < 1e-2), got {}",
        errors[0]
    );
}

/// Paper Fig. 1 shape: selected and unselected group norms are separated
/// by orders of magnitude, making the threshold T easy to pick.
#[test]
fn group_norms_bimodal_separation() {
    let (_, data) = collect();
    let selector = SensorSelector::new(8.0, 1e-3).expect("selector");
    let result = selector.select(&data.x, &data.f).expect("selection");
    let mut selected_min = f64::INFINITY;
    let mut unselected_max = 0.0_f64;
    for (m, &norm) in result.group_norms.iter().enumerate() {
        if result.selected.contains(&m) {
            selected_min = selected_min.min(norm);
        } else {
            unselected_max = unselected_max.max(norm);
        }
    }
    assert!(
        selected_min > 10.0 * unselected_max.max(1e-12),
        "selected ({selected_min:.3e}) and unselected ({unselected_max:.3e}) \
         norms are not well separated"
    );
}

/// Paper Table 2 shape: the prediction-model detector beats Eagle-Eye on
/// miss error (and total error) at an equal sensor budget.
#[test]
fn proposed_beats_eagle_eye_on_miss_error() {
    let (_, data) = collect();
    let (train, test) = data.split(3);

    // Fit the proposed methodology; give Eagle-Eye the same sensor count.
    let cfg = MethodologyConfig {
        lambda: 10.0,
        ..MethodologyConfig::default()
    };
    let fitted = Methodology::fit(&train.x, &train.f, &cfg).expect("fit");
    let q = fitted.sensors().len();
    let eagle = EagleEyePlacement::place(&train.x, &train.f, q, &EagleEyeConfig::default())
        .expect("eagle-eye placement");

    let truth = detection::ground_truth(&test.f, 0.85);
    let emergencies = truth.iter().filter(|&&t| t).count();
    assert!(
        emergencies >= 5,
        "test split has too few emergencies ({emergencies}) to compare"
    );

    let proposed_alarms = fitted.model().detect_matrix(&test.x, 0.85).expect("detect");
    let eagle_alarms = eagle.detect_matrix(&test.x).expect("detect");
    let proposed = detection::evaluate(&truth, &proposed_alarms).expect("evaluate");
    let eagle = detection::evaluate(&truth, &eagle_alarms).expect("evaluate");

    assert!(
        proposed.miss_rate <= eagle.miss_rate,
        "proposed ME {} should not exceed Eagle-Eye ME {}",
        proposed.miss_rate,
        eagle.miss_rate
    );
    assert!(
        proposed.total_error_rate <= eagle.total_error_rate,
        "proposed TE {} should not exceed Eagle-Eye TE {}",
        proposed.total_error_rate,
        eagle.total_error_rate
    );
}

/// The paper's premise for Fig. 3: Eagle-Eye chases worst-noise candidates;
/// the proposed selection spreads towards correlation. Verify the placements
/// actually differ and Eagle-Eye's picks are noisier on average.
#[test]
fn placements_differ_and_eagle_eye_prefers_noisy_spots() {
    let (_, data) = collect();
    let cfg = MethodologyConfig {
        lambda: 10.0,
        ..MethodologyConfig::default()
    };
    let fitted = Methodology::fit(&data.x, &data.f, &cfg).expect("fit");
    let q = fitted.sensors().len().max(2);
    let eagle = EagleEyePlacement::place(&data.x, &data.f, q, &EagleEyeConfig::default())
        .expect("placement");

    let proposed: std::collections::BTreeSet<usize> =
        fitted.sensors().iter().copied().collect();
    let eagles: std::collections::BTreeSet<usize> = eagle.selected().iter().copied().collect();
    assert_ne!(proposed, eagles, "the two approaches picked identical sensors");

    // Mean of the minimum observed voltage at each approach's sensors:
    // Eagle-Eye's should be lower (worse noise).
    let min_at = |c: usize| {
        data.x
            .row(c)
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    };
    let eagle_mean: f64 =
        eagles.iter().map(|&c| min_at(c)).sum::<f64>() / eagles.len() as f64;
    let proposed_mean: f64 =
        proposed.iter().map(|&c| min_at(c)).sum::<f64>() / proposed.len() as f64;
    assert!(
        eagle_mean <= proposed_mean + 1e-9,
        "eagle-eye sensors ({eagle_mean:.4}) should sit at noisier spots than \
         proposed ({proposed_mean:.4})"
    );
}

/// Wrong-alarm rates stay small for both approaches (paper: < 1e-3 scale;
/// our substrate is noisier, so allow an order of magnitude slack).
#[test]
fn wrong_alarm_rates_are_small() {
    let (_, data) = collect();
    let (train, test) = data.split(3);
    let cfg = MethodologyConfig {
        lambda: 10.0,
        ..MethodologyConfig::default()
    };
    let fitted = Methodology::fit(&train.x, &train.f, &cfg).expect("fit");
    let report = fitted.evaluate(&test.x, &test.f).expect("evaluate");
    assert!(
        report.detection.wrong_alarm_rate < 0.05,
        "WAE too high: {}",
        report.detection.wrong_alarm_rate
    );
}
