//! Cross-crate consistency checks: independent implementations must agree
//! on real (simulated) data, not just on toy matrices.

use voltsense::core::{SensorSelector, VoltageMapModel};
use voltsense::grouplasso::{
    kkt_violation, solve_penalized, solve_penalized_fista, GlOptions, GlProblem,
};
use voltsense::linalg::stats::Normalizer;
use voltsense::linalg::{lstsq, Matrix};
use voltsense::scenario::Scenario;
use voltsense::sparse::{cg, EnvelopeCholesky, TripletMatrix};

fn scenario_data() -> (Matrix, Matrix) {
    let s = Scenario::small().expect("scenario builds");
    let data = s.collect(&[0]).expect("simulation succeeds");
    (data.x, data.f)
}

#[test]
fn direct_and_iterative_solvers_agree_on_grid_matrix() {
    // Rebuild a grid-like SPD matrix at the scenario's scale and compare
    // the two sparse solvers.
    let n = 300;
    let mut t = TripletMatrix::new(n, n);
    for i in 0..n {
        if i + 1 < n {
            t.stamp_conductance(i, i + 1, 4.0);
        }
        if i + 20 < n {
            t.stamp_conductance(i, i + 20, 4.0);
        }
        if i % 25 == 0 {
            t.stamp_grounded_conductance(i, 1.5);
        }
    }
    let a = t.to_csr();
    let b: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.01).sin()).collect();
    let direct = EnvelopeCholesky::factor(&a).unwrap().solve(&b).unwrap();
    let iterative = cg::solve(
        &a,
        &b,
        &cg::CgOptions {
            tolerance: 1e-12,
            max_iterations: Some(20 * n),
            ..cg::CgOptions::default()
        },
    )
    .unwrap();
    for (d, i) in direct.iter().zip(&iterative.x) {
        assert!((d - i).abs() < 1e-6, "{d} vs {i}");
    }
}

#[test]
fn bcd_and_fista_agree_on_simulated_voltages() {
    let (x, f) = scenario_data();
    // Use a candidate subset to keep FISTA fast.
    let rows: Vec<usize> = (0..x.rows()).step_by(7).collect();
    let x = x.select_rows(&rows);
    let f_rows: Vec<usize> = (0..f.rows()).step_by(4).collect();
    let f = f.select_rows(&f_rows);

    let z = Normalizer::fit(&x).apply(&x).unwrap();
    let g = Normalizer::fit(&f).apply(&f).unwrap();
    let p = GlProblem::from_data(&z, &g).unwrap();
    let mu = p.mu_max() * 0.3;
    let opts = GlOptions {
        max_sweeps: 50_000,
        tolerance: 1e-7,
        ..GlOptions::default()
    };
    let bcd = solve_penalized(&p, mu, &opts, None).unwrap();
    let fista = solve_penalized_fista(&p, mu, &opts, None).unwrap();
    let scale = bcd.objective.abs().max(1.0);
    assert!(
        (bcd.objective - fista.objective).abs() < 1e-3 * scale,
        "objectives diverge: bcd {} vs fista {}",
        bcd.objective,
        fista.objective
    );
    // KKT check validates both against the optimality conditions.
    assert!(kkt_violation(&p, &bcd.beta, mu).unwrap() < 1e-5 * p.mu_max());
}

#[test]
fn voltage_map_model_matches_manual_normal_equations() {
    let (x, f) = scenario_data();
    let sensors: Vec<usize> = vec![0, x.rows() / 2, x.rows() - 1];
    let model = VoltageMapModel::fit(&x, &f, &sensors).unwrap();
    // Manual OLS through the public linalg API.
    let x_sel = x.select_rows(&sensors);
    let manual = lstsq::ols_with_intercept(&x_sel, &f).unwrap();
    assert!(model
        .linear_fit()
        .coefficients
        .approx_eq(&manual.coefficients, 1e-9));
    // Predictions agree on a sample.
    let sample = x.col(5);
    let via_model = model.predict_from_candidates(&sample).unwrap();
    let readings: Vec<f64> = sensors.iter().map(|&s| sample[s]).collect();
    let via_manual = manual.predict(&readings).unwrap();
    for (a, b) in via_model.iter().zip(&via_manual) {
        assert!((a - b).abs() < 1e-12);
    }
}

#[test]
fn selection_is_stable_across_solver_tolerances() {
    // Tightening the solver tolerance must keep the selected support
    // essentially the same (the support is the methodology's real
    // output). Candidates on a power grid are near-duplicates, so swaps
    // between statistically-equivalent neighbours are allowed; wholesale
    // changes are not.
    let (x, f) = scenario_data();
    let rows: Vec<usize> = (0..x.rows()).step_by(5).collect();
    let x = x.select_rows(&rows);

    let loose = SensorSelector::with_options(
        5.0,
        1e-3,
        GlOptions {
            tolerance: 1e-4,
            ..GlOptions::default()
        },
    )
    .unwrap()
    .select(&x, &f)
    .unwrap();
    let tight = SensorSelector::with_options(
        5.0,
        1e-3,
        GlOptions {
            tolerance: 1e-6,
            max_sweeps: 20_000,
            ..GlOptions::default()
        },
    )
    .unwrap()
    .select(&x, &f)
    .unwrap();
    let loose_set: std::collections::BTreeSet<usize> = loose.selected.iter().copied().collect();
    let tight_set: std::collections::BTreeSet<usize> = tight.selected.iter().copied().collect();
    let overlap = loose_set.intersection(&tight_set).count() as f64;
    let union = loose_set.union(&tight_set).count() as f64;
    assert!(
        overlap / union >= 0.7,
        "supports diverged: loose {loose_set:?} vs tight {tight_set:?}"
    );
    let diff = (loose.selected.len() as i64 - tight.selected.len() as i64).abs();
    assert!(diff <= 2, "selected counts diverged by {diff}");
}

#[test]
fn normalization_round_trips_through_selection() {
    let (x, f) = scenario_data();
    let selector = SensorSelector::new(5.0, 1e-3).unwrap();
    let result = selector.select(&x, &f).unwrap();
    // The stored normalizers must reproduce X and F exactly.
    let z = result.x_normalizer.apply(&x).unwrap();
    let back = result.x_normalizer.invert(&z).unwrap();
    assert!(back.approx_eq(&x, 1e-9));
    let g = result.f_normalizer.apply(&f).unwrap();
    let back_f = result.f_normalizer.invert(&g).unwrap();
    assert!(back_f.approx_eq(&f, 1e-9));
}
