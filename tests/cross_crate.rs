//! Cross-crate consistency checks: independent implementations must agree
//! on real (simulated) data, not just on toy matrices.

use voltsense::core::{
    EmergencyMonitor, FaultPolicy, FaultTolerantModel, SensorSelector, VoltageMapModel,
};
use voltsense::faults::{FaultEvent, FaultInjector, FaultKind, FaultSchedule};
use voltsense::grouplasso::{
    kkt_violation, solve_penalized, solve_penalized_fista, GlOptions, GlProblem,
};
use voltsense::linalg::stats::Normalizer;
use voltsense::linalg::{lstsq, Matrix};
use voltsense::scenario::Scenario;
use voltsense::sparse::{cg, EnvelopeCholesky, TripletMatrix};

fn scenario_data() -> (Matrix, Matrix) {
    let s = Scenario::small().expect("scenario builds");
    let data = s.collect(&[0]).expect("simulation succeeds");
    (data.x, data.f)
}

#[test]
fn direct_and_iterative_solvers_agree_on_grid_matrix() {
    // Rebuild a grid-like SPD matrix at the scenario's scale and compare
    // the two sparse solvers.
    let n = 300;
    let mut t = TripletMatrix::new(n, n);
    for i in 0..n {
        if i + 1 < n {
            t.stamp_conductance(i, i + 1, 4.0);
        }
        if i + 20 < n {
            t.stamp_conductance(i, i + 20, 4.0);
        }
        if i % 25 == 0 {
            t.stamp_grounded_conductance(i, 1.5);
        }
    }
    let a = t.to_csr();
    let b: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.01).sin()).collect();
    let direct = EnvelopeCholesky::factor(&a).unwrap().solve(&b).unwrap();
    let iterative = cg::solve(
        &a,
        &b,
        &cg::CgOptions {
            tolerance: 1e-12,
            max_iterations: Some(20 * n),
            ..cg::CgOptions::default()
        },
    )
    .unwrap();
    for (d, i) in direct.iter().zip(&iterative.x) {
        assert!((d - i).abs() < 1e-6, "{d} vs {i}");
    }
}

#[test]
fn bcd_and_fista_agree_on_simulated_voltages() {
    let (x, f) = scenario_data();
    // Use a candidate subset to keep FISTA fast.
    let rows: Vec<usize> = (0..x.rows()).step_by(7).collect();
    let x = x.select_rows(&rows);
    let f_rows: Vec<usize> = (0..f.rows()).step_by(4).collect();
    let f = f.select_rows(&f_rows);

    let z = Normalizer::fit(&x).apply(&x).unwrap();
    let g = Normalizer::fit(&f).apply(&f).unwrap();
    let p = GlProblem::from_data(&z, &g).unwrap();
    let mu = p.mu_max() * 0.3;
    let opts = GlOptions {
        max_sweeps: 50_000,
        tolerance: 1e-7,
        ..GlOptions::default()
    };
    let bcd = solve_penalized(&p, mu, &opts, None).unwrap();
    let fista = solve_penalized_fista(&p, mu, &opts, None).unwrap();
    let scale = bcd.objective.abs().max(1.0);
    assert!(
        (bcd.objective - fista.objective).abs() < 1e-3 * scale,
        "objectives diverge: bcd {} vs fista {}",
        bcd.objective,
        fista.objective
    );
    // KKT check validates both against the optimality conditions.
    assert!(kkt_violation(&p, &bcd.beta, mu).unwrap() < 1e-5 * p.mu_max());
}

#[test]
fn voltage_map_model_matches_manual_normal_equations() {
    let (x, f) = scenario_data();
    let sensors: Vec<usize> = vec![0, x.rows() / 2, x.rows() - 1];
    let model = VoltageMapModel::fit(&x, &f, &sensors).unwrap();
    // Manual OLS through the public linalg API.
    let x_sel = x.select_rows(&sensors);
    let manual = lstsq::ols_with_intercept(&x_sel, &f).unwrap();
    assert!(model
        .linear_fit()
        .coefficients
        .approx_eq(&manual.coefficients, 1e-9));
    // Predictions agree on a sample.
    let sample = x.col(5);
    let via_model = model.predict_from_candidates(&sample).unwrap();
    let readings: Vec<f64> = sensors.iter().map(|&s| sample[s]).collect();
    let via_manual = manual.predict(&readings).unwrap();
    for (a, b) in via_model.iter().zip(&via_manual) {
        assert!((a - b).abs() < 1e-12);
    }
}

#[test]
fn selection_is_stable_across_solver_tolerances() {
    // Tightening the solver tolerance must keep the selected support
    // essentially the same (the support is the methodology's real
    // output). Candidates on a power grid are near-duplicates, so swaps
    // between statistically-equivalent neighbours are allowed; wholesale
    // changes are not.
    let (x, f) = scenario_data();
    let rows: Vec<usize> = (0..x.rows()).step_by(5).collect();
    let x = x.select_rows(&rows);

    let loose = SensorSelector::with_options(
        5.0,
        1e-3,
        GlOptions {
            tolerance: 1e-4,
            ..GlOptions::default()
        },
    )
    .unwrap()
    .select(&x, &f)
    .unwrap();
    let tight = SensorSelector::with_options(
        5.0,
        1e-3,
        GlOptions {
            tolerance: 1e-6,
            max_sweeps: 20_000,
            ..GlOptions::default()
        },
    )
    .unwrap()
    .select(&x, &f)
    .unwrap();
    let loose_set: std::collections::BTreeSet<usize> = loose.selected.iter().copied().collect();
    let tight_set: std::collections::BTreeSet<usize> = tight.selected.iter().copied().collect();
    let overlap = loose_set.intersection(&tight_set).count() as f64;
    let union = loose_set.union(&tight_set).count() as f64;
    assert!(
        overlap / union >= 0.7,
        "supports diverged: loose {loose_set:?} vs tight {tight_set:?}"
    );
    let diff = (loose.selected.len() as i64 - tight.selected.len() as i64).abs();
    assert!(diff <= 2, "selected counts diverged by {diff}");
}

#[test]
fn injected_fault_is_survived_on_simulated_voltages() {
    // Wire the fault injector (voltsense-faults) into the fault-tolerant
    // monitor (voltsense-core) on real simulated data: a sensor dropping
    // to NaN mid-trace must be failed and predicted around, and the whole
    // run must replay bit-identically from the seed.
    let (x, f) = scenario_data();
    let m = x.rows();
    let sensors = vec![0, m / 3, 2 * m / 3, m - 1];
    let q = sensors.len();
    let ft = FaultTolerantModel::fit(&x, &f, &sensors).unwrap();

    let onset = 5u64;
    let schedule =
        FaultSchedule::new(vec![FaultEvent::new(1, onset, FaultKind::OpenNaN)]).unwrap();
    let run = |mut monitor: EmergencyMonitor| -> Vec<f64> {
        let mut injector = FaultInjector::new(schedule.clone(), q, 2024).unwrap();
        (0..30)
            .map(|s| {
                let readings: Vec<f64> = sensors.iter().map(|&r| x[(r, s)]).collect();
                let corrupted = injector.corrupt(&readings).unwrap();
                monitor.observe(&corrupted).unwrap().predicted_min
            })
            .collect()
    };

    let monitor =
        EmergencyMonitor::fault_tolerant(ft.clone(), 0.85, 1, 0.0, FaultPolicy::default())
            .unwrap();
    let mut probe = monitor.clone();
    let trace = run(probe.clone());
    // Every sample produced a finite prediction despite the dead sensor.
    assert!(trace.iter().all(|v| v.is_finite()));

    // The dead sensor is permanently failed within the persistence window.
    let mut injector = FaultInjector::new(schedule.clone(), q, 2024).unwrap();
    for s in 0..30 {
        let readings: Vec<f64> = sensors.iter().map(|&r| x[(r, s)]).collect();
        probe.observe(&injector.corrupt(&readings).unwrap()).unwrap();
    }
    let persistence = FaultPolicy::default().health_persistence as u64;
    assert_eq!(probe.failed_sensors(), vec![1]);
    assert_eq!(probe.stats().sensors_failed, 1);
    // Gated on every pre-promotion strike; once failed it is excluded
    // outright rather than gated.
    assert_eq!(probe.stats().gated_readings, persistence - 1);

    // After failure, predictions equal the leave-sensor-1-out model fed
    // with the surviving readings — the hot-swap is exact.
    let survivors: Vec<usize> = sensors
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != 1)
        .map(|(_, &r)| r)
        .collect();
    let fallback = VoltageMapModel::fit(&x, &f, &survivors).unwrap();
    let s = 29usize;
    let surviving: Vec<f64> = survivors.iter().map(|&r| x[(r, s)]).collect();
    let expected = fallback.predict_from_sensors(&surviving).unwrap();
    let expected_min = expected.iter().copied().fold(f64::INFINITY, f64::min);
    assert!((trace[s] - expected_min).abs() < 1e-12);

    // Same seed, same monitor => bit-identical replay.
    let replay = run(monitor);
    assert_eq!(trace.len(), replay.len());
    for (a, b) in trace.iter().zip(&replay) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

#[test]
fn normalization_round_trips_through_selection() {
    let (x, f) = scenario_data();
    let selector = SensorSelector::new(5.0, 1e-3).unwrap();
    let result = selector.select(&x, &f).unwrap();
    // The stored normalizers must reproduce X and F exactly.
    let z = result.x_normalizer.apply(&x).unwrap();
    let back = result.x_normalizer.invert(&z).unwrap();
    assert!(back.approx_eq(&x, 1e-9));
    let g = result.f_normalizer.apply(&f).unwrap();
    let back_f = result.f_normalizer.invert(&g).unwrap();
    assert!(back_f.approx_eq(&f, 1e-9));
}
