//! Integration tests for the paper-extension features: multiple
//! representatives per block, function-area sensor sites, per-core
//! partitioning of extended datasets, and λ cross-validation on real data.

use voltsense::core::{Methodology, MethodologyConfig};
use voltsense::floorplan::NodeSite;
use voltsense::grouplasso::{cross_validate, GlOptions};
use voltsense::linalg::stats::Normalizer;
use voltsense::scenario::{CollectOptions, CorePartition, Scenario, SensorSites};

fn scenario() -> Scenario {
    Scenario::small().expect("scenario builds")
}

#[test]
fn anywhere_candidates_superset_blank_area() {
    let s = scenario();
    let ba = s.collect(&[0]).expect("BA collect");
    let fa = s
        .collect_with(
            &[0],
            &CollectOptions {
                sensor_sites: SensorSites::Anywhere,
                ..CollectOptions::default()
            },
        )
        .expect("FA collect");
    assert_eq!(fa.num_candidates(), s.chip().lattice().len());
    assert!(fa.num_candidates() > ba.num_candidates());
    assert!(fa.has_fa_candidates(s.chip()));
    assert!(!ba.has_fa_candidates(s.chip()));
    // Same samples either way.
    assert_eq!(fa.num_samples(), ba.num_samples());
}

#[test]
fn fa_candidates_allow_trivial_self_prediction() {
    // With FA candidates allowed, the critical nodes themselves are in X,
    // so an OLS refit on them must be (numerically) exact.
    let s = scenario();
    let data = s
        .collect_with(
            &[0],
            &CollectOptions {
                sensor_sites: SensorSites::Anywhere,
                ..CollectOptions::default()
            },
        )
        .expect("collect");
    // Find the candidate rows of the first three critical nodes.
    let sensors: Vec<usize> = data.critical_nodes[..3]
        .iter()
        .map(|cn| {
            data.candidate_nodes
                .iter()
                .position(|c| c == cn)
                .expect("critical node is a candidate under Anywhere")
        })
        .collect();
    let model =
        voltsense::core::VoltageMapModel::fit(&data.x.select_rows(&sensors), &data.f.select_rows(&[0, 1, 2]), &[0, 1, 2])
            .expect("fit");
    assert!(model.rms_residual() < 1e-10, "self-prediction not exact");
}

#[test]
fn representatives_scale_k_up_to_block_capacity() {
    let s = scenario();
    let one = s.collect(&[0]).expect("collect");
    let two = s
        .collect_with(
            &[0],
            &CollectOptions {
                representatives_per_block: 2,
                ..CollectOptions::default()
            },
        )
        .expect("collect");
    // Small-chip blocks hold >= 1 lattice node; K never shrinks and every
    // row still maps into its block.
    assert!(two.num_blocks() >= one.num_blocks());
    assert_eq!(two.row_blocks.len(), two.num_blocks());
    let lattice = s.chip().lattice();
    for (node, block) in two.critical_nodes.iter().zip(&two.row_blocks) {
        match lattice.site(*node) {
            NodeSite::FunctionArea(owner) => assert_eq!(owner, *block),
            other => panic!("critical node in blank area: {other:?}"),
        }
    }
    // Representatives of the same block are distinct nodes.
    for b in 0..one.num_blocks() {
        let nodes: Vec<_> = two
            .row_blocks
            .iter()
            .zip(&two.critical_nodes)
            .filter(|(rb, _)| rb.0 == b)
            .map(|(_, n)| n)
            .collect();
        let mut dedup = nodes.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), nodes.len(), "duplicate representative in block {b}");
    }
}

#[test]
fn zero_representatives_rejected() {
    let s = scenario();
    let r = s.collect_with(
        &[0],
        &CollectOptions {
            representatives_per_block: 0,
            ..CollectOptions::default()
        },
    );
    assert!(r.is_err());
}

#[test]
fn partition_for_extended_data_covers_all_rows() {
    let s = scenario();
    let data = s
        .collect_with(
            &[0],
            &CollectOptions {
                representatives_per_block: 2,
                sensor_sites: SensorSites::Anywhere,
            },
        )
        .expect("collect");
    let partition = CorePartition::for_data(s.chip(), &data);
    let cand_total: usize = (0..partition.num_cores())
        .map(|c| partition.candidates_of(voltsense::floorplan::CoreId(c)).len())
        .sum();
    let block_total: usize = (0..partition.num_cores())
        .map(|c| partition.blocks_of(voltsense::floorplan::CoreId(c)).len())
        .sum();
    assert_eq!(cand_total, data.num_candidates());
    assert_eq!(block_total, data.num_blocks());
}

#[test]
fn methodology_works_on_extended_dataset() {
    let s = scenario();
    let data = s
        .collect_with(
            &[0, 6],
            &CollectOptions {
                representatives_per_block: 2,
                ..CollectOptions::default()
            },
        )
        .expect("collect");
    let (train, test) = data.split(3);
    let fitted = Methodology::fit(&train.x, &train.f, &MethodologyConfig::default())
        .expect("fit on extended data");
    let report = fitted.evaluate(&test.x, &test.f).expect("evaluate");
    assert!(report.relative_error < 0.02, "rel err {}", report.relative_error);
}

#[test]
fn cross_validation_runs_on_simulated_data() {
    let s = scenario();
    let data = s.collect(&[0]).expect("collect");
    // Subsample candidates to keep the CV quick.
    let rows: Vec<usize> = (0..data.x.rows()).step_by(9).collect();
    let x = data.x.select_rows(&rows);
    let z = Normalizer::fit(&x).apply(&x).expect("normalize");
    let g = Normalizer::fit(&data.f).apply(&data.f).expect("normalize");
    let problem = voltsense::grouplasso::GlProblem::from_data(&z, &g).expect("problem");
    let mu_max = problem.mu_max();
    let mus: Vec<f64> = (1..=5).map(|i| mu_max * 0.3f64.powi(i)).collect();
    let cv = cross_validate(&z, &g, &mus, 4, &GlOptions::default()).expect("cv");
    // The CV error at the best penalty beats the harshest penalty.
    assert!(cv.mean_errors[cv.best_index] < cv.mean_errors[0]);
    assert!(cv.one_se_mu() >= cv.best_mu());
}
